open Tiling_ir

type result = { tiles : int array; objective : float; evaluations : int }

let make_eval sample nest cache =
  let memo : (int list, float) Hashtbl.t = Hashtbl.create 512 in
  let calls = ref 0 in
  let eval tiles =
    let key = Array.to_list tiles in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
        incr calls;
        let v = Tiling_core.Tiler.objective_on sample nest cache tiles in
        Hashtbl.replace memo key v;
        v
  in
  (eval, calls)

let candidates_per_dim ~per_dim span =
  if span <= per_dim then List.init span (fun i -> i + 1)
  else begin
    (* Even lattice including the extremes. *)
    let xs = List.init per_dim (fun i -> 1 + (i * (span - 1) / (per_dim - 1))) in
    List.sort_uniq compare xs
  end

let exhaustive ?(per_dim = 32) sample nest cache =
  let spans = Transform.tile_spans nest in
  let eval, calls = make_eval sample nest cache in
  let dims = Array.map (candidates_per_dim ~per_dim) spans in
  let d = Array.length spans in
  let best = ref (Array.map (fun s -> s) spans) in
  let best_obj = ref (eval !best) in
  let current = Array.make d 1 in
  let rec go l =
    if l = d then begin
      let o = eval current in
      if o < !best_obj then begin
        best_obj := o;
        best := Array.copy current
      end
    end
    else
      List.iter
        (fun t ->
          current.(l) <- t;
          go (l + 1))
        dims.(l)
  in
  go 0;
  { tiles = !best; objective = !best_obj; evaluations = !calls }

let random ~evals ~seed sample nest cache =
  let spans = Transform.tile_spans nest in
  let eval, calls = make_eval sample nest cache in
  let rng = Tiling_util.Prng.create ~seed in
  let best = ref (Array.copy spans) in
  let best_obj = ref (eval !best) in
  while !calls < evals do
    let t = Array.map (fun s -> 1 + Tiling_util.Prng.int rng s) spans in
    let o = eval t in
    if o < !best_obj then begin
      best_obj := o;
      best := t
    end
  done;
  { tiles = !best; objective = !best_obj; evaluations = !calls }

let hill_climb ~evals ~seed sample nest cache =
  let spans = Transform.tile_spans nest in
  let eval, calls = make_eval sample nest cache in
  let rng = Tiling_util.Prng.create ~seed in
  let d = Array.length spans in
  let best = ref (Array.copy spans) in
  let best_obj = ref (eval !best) in
  let neighbours t =
    List.concat
      (List.init d (fun l ->
           List.filter_map
             (fun dlt ->
               let v = Tiling_util.Intmath.clamp ~lo:1 ~hi:spans.(l) (t.(l) + dlt) in
               if v = t.(l) then None
               else begin
                 let t' = Array.copy t in
                 t'.(l) <- v;
                 Some t'
               end)
             [ -1; 1; -(max 1 (t.(l) / 4)); max 1 (t.(l) / 4) ]))
  in
  (* Memoised re-visits are free, so also bound the number of restarts to
     guarantee termination. *)
  let starts = ref 0 in
  while !calls < evals && !starts < 4 * evals do
    incr starts;
    (* One multi-start descent. *)
    let here = ref (Array.map (fun s -> 1 + Tiling_util.Prng.int rng s) spans) in
    let here_obj = ref (eval !here) in
    let improved = ref true in
    while !improved && !calls < evals do
      improved := false;
      let cands = neighbours !here in
      List.iter
        (fun t ->
          if !calls < evals then begin
            let o = eval t in
            if o < !here_obj then begin
              here_obj := o;
              here := t;
              improved := true
            end
          end)
        cands
    done;
    if !here_obj < !best_obj then begin
      best_obj := !here_obj;
      best := !here
    end
  done;
  { tiles = !best; objective = !best_obj; evaluations = !calls }
