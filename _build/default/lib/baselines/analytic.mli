(** Analytic tile-size selection algorithms from the related work
    (section 5 of the paper), reimplemented as comparison baselines.

    These algorithms pick tile sizes from closed-form reasoning about the
    cache — no search over a locality model.  They run in micro- to
    milliseconds but only model capacity (and, for ESS/TSS, one array's
    self-interference), which is exactly the gap the paper's GA+CME
    approach closes.

    All three return a full tile vector for the nest (untiled dimensions
    get their full span). *)

val footprint_lines :
  line:int -> Tiling_ir.Affine.t -> elem:int -> int array -> int
(** [footprint_lines ~line form ~elem tiles] estimates the number of
    distinct memory lines one reference touches during one tile execution,
    by merging per-dimension strides in increasing order (the standard
    footprint model of Coleman & McKinley and Sarkar & Megiddo). *)

val euclid_heights : cache_elems:int -> column:int -> int list
(** The Euclidean remainder sequence of (cache size, column size), in
    elements: the canonical non-self-conflicting column heights used by
    ESS and TSS. *)

val lrw : Tiling_ir.Nest.t -> Tiling_cache.Config.t -> int array
(** Lam-Rothberg-Wolf ESS: the largest non-conflicting *square* tile
    (side from {!euclid_heights}, at most [sqrt cache]), applied to the
    two innermost loops. *)

val coleman_mckinley : Tiling_ir.Nest.t -> Tiling_cache.Config.t -> int array
(** Coleman-McKinley TSS: rectangular tiles with heights from
    {!euclid_heights}; picks the largest-area rectangle whose working set
    fits the cache, penalised by a cross-interference estimate. *)

val sarkar_megiddo : Tiling_ir.Nest.t -> Tiling_cache.Config.t -> int array
(** Sarkar-Megiddo: minimises an analytic memory-cost-per-iteration model
    (total footprint lines / iterations per tile) subject to the working
    set fitting the cache, over a bounded lattice of tile vectors. *)
