lib/baselines/annealing.ml: Array Float Hashtbl Intmath List Prng Search Tiling_core Tiling_ir Tiling_util Transform
