lib/baselines/analytic.mli: Tiling_cache Tiling_ir
