lib/baselines/analytic.ml: Affine Array Array_decl List Nest Tiling_cache Tiling_ir Tiling_util Transform
