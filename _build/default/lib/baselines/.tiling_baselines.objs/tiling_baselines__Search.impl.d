lib/baselines/search.ml: Array Hashtbl List Tiling_core Tiling_ir Tiling_util Transform
