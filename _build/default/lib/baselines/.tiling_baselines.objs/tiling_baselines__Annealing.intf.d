lib/baselines/annealing.mli: Search Tiling_cache Tiling_core Tiling_ir
