lib/baselines/search.mli: Tiling_cache Tiling_core Tiling_ir
