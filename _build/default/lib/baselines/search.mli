(** Search baselines for tile-size selection.

    All searches optimise exactly the same objective as the genetic
    algorithm — {!Tiling_core.Tiler.objective_on} over a shared sample — so
    comparisons isolate the *search strategy* (section 5 of the paper
    explains why the authors could not compare against other published
    selectors on an equal footing; sharing the objective is how we can). *)

type result = {
  tiles : int array;
  objective : float;   (** replacement misses over the common sample *)
  evaluations : int;   (** objective calls spent *)
}

val exhaustive :
  ?per_dim:int ->
  Tiling_core.Sample.t ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  result
(** Grid enumeration of the tile space.  [per_dim] (default 32) bounds the
    values tried per dimension: all of [1..span] when the span is small,
    otherwise an even lattice including 1 and the full span.  With small
    spans this is the true optimum (the paper's "optimal" reference). *)

val random :
  evals:int ->
  seed:int ->
  Tiling_core.Sample.t ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  result
(** Uniform random tile vectors, best kept. *)

val hill_climb :
  evals:int ->
  seed:int ->
  Tiling_core.Sample.t ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  result
(** Multi-start steepest-descent: from random starts, repeatedly move to
    the best of the (+/- 1, +/- 25 %) per-dimension neighbours until no
    neighbour improves or the budget runs out. *)
