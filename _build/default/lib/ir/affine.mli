(** Dense affine forms over the loop variables of a nest.

    An affine form represents [const + sum_l coeffs.(l) * i_l] where [i_l]
    is the value of loop variable [l] (outermost first).  Subscript
    expressions, flattened address functions and reuse-distance computations
    are all affine forms. *)

type t = { const : int; coeffs : int array }

val const : depth:int -> int -> t
val var : depth:int -> int -> t
(** [var ~depth l] is the form [i_l]. *)

val make : const:int -> int array -> t
val depth : t -> int
val eval : t -> int array -> int
(** [eval f point] substitutes the loop values.  [point] must have length
    [depth f]. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val shift : t -> int -> t
(** [shift f c] adds [c] to the constant term. *)

val is_const : t -> bool
val equal : t -> t -> bool

val coeff : t -> int -> int

val extend : t -> new_depth:int -> remap:(int -> int) -> t
(** [extend f ~new_depth ~remap] re-expresses [f] in a nest of depth
    [new_depth], sending old variable [l] to new variable [remap l]. *)

val range_over : t -> lo:int array -> hi:int array -> int * int
(** [range_over f ~lo ~hi] is the (min, max) of [f] over the box
    [prod_l \[lo_l, hi_l\]] (attained at box corners). *)

val pp : names:string array -> t Fmt.t
