type t = { const : int; coeffs : int array }

let const ~depth c = { const = c; coeffs = Array.make depth 0 }

let var ~depth l =
  assert (0 <= l && l < depth);
  let coeffs = Array.make depth 0 in
  coeffs.(l) <- 1;
  { const = 0; coeffs }

let make ~const coeffs = { const; coeffs }

let depth t = Array.length t.coeffs

let eval t point =
  assert (Array.length point = depth t);
  let acc = ref t.const in
  Array.iteri (fun l c -> if c <> 0 then acc := !acc + (c * point.(l))) t.coeffs;
  !acc

let add a b =
  assert (depth a = depth b);
  { const = a.const + b.const; coeffs = Array.map2 ( + ) a.coeffs b.coeffs }

let scale k t = { const = k * t.const; coeffs = Array.map (fun c -> k * c) t.coeffs }

let sub a b = add a (scale (-1) b)

let shift t c = { t with const = t.const + c }

let is_const t = Array.for_all (fun c -> c = 0) t.coeffs

let equal a b = a.const = b.const && a.coeffs = b.coeffs

let coeff t l = t.coeffs.(l)

let extend t ~new_depth ~remap =
  let coeffs = Array.make new_depth 0 in
  Array.iteri
    (fun l c ->
      if c <> 0 then begin
        let l' = remap l in
        assert (0 <= l' && l' < new_depth);
        coeffs.(l') <- coeffs.(l') + c
      end)
    t.coeffs;
  { const = t.const; coeffs }

let range_over t ~lo ~hi =
  let mn = ref t.const and mx = ref t.const in
  Array.iteri
    (fun l c ->
      if c > 0 then begin
        mn := !mn + (c * lo.(l));
        mx := !mx + (c * hi.(l))
      end
      else if c < 0 then begin
        mn := !mn + (c * hi.(l));
        mx := !mx + (c * lo.(l))
      end)
    t.coeffs;
  (!mn, !mx)

let pp ~names ppf t =
  let first = ref true in
  let sep () = if !first then first := false else Fmt.pf ppf " + " in
  Array.iteri
    (fun l c ->
      if c <> 0 then begin
        sep ();
        if c = 1 then Fmt.pf ppf "%s" names.(l) else Fmt.pf ppf "%d*%s" c names.(l)
      end)
    t.coeffs;
  if t.const <> 0 || !first then begin
    sep ();
    Fmt.pf ppf "%d" t.const
  end
