lib/ir/affine.mli: Fmt
