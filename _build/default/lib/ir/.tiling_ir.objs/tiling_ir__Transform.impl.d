lib/ir/transform.ml: Affine Array Array_decl Hashtbl List Nest Printf
