lib/ir/array_decl.mli: Fmt
