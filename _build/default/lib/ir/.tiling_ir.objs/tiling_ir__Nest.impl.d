lib/ir/nest.ml: Affine Array Array_decl Fmt List Printf String Tiling_util
