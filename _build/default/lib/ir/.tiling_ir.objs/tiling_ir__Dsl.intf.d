lib/ir/dsl.mli: Array_decl Nest
