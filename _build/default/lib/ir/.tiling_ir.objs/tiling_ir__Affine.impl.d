lib/ir/affine.ml: Array Fmt
