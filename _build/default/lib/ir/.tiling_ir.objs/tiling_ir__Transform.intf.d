lib/ir/transform.mli: Nest
