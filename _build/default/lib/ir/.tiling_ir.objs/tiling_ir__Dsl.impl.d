lib/ir/dsl.ml: Affine Array Array_decl List Nest Printf String
