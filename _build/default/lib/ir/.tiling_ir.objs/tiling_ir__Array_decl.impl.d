lib/ir/array_decl.ml: Array Fmt List
