lib/ir/nest.mli: Affine Array_decl Fmt Tiling_util
