open Tiling_ir
open Tiling_kernels

let test_all_build () =
  List.iter
    (fun (s : Kernels.spec) ->
      List.iter
        (fun n ->
          let nest = s.build n in
          Alcotest.(check int)
            (Printf.sprintf "%s depth" s.name)
            s.loops (Nest.depth nest);
          Alcotest.(check bool)
            (Printf.sprintf "%s has refs" s.name)
            true
            (Array.length nest.Nest.refs > 0))
        s.sizes)
    Kernels.all

let test_count () =
  Alcotest.(check int) "seventeen kernels (table 1)" 17 (List.length Kernels.all)

let test_find () =
  let s = Kernels.find "mm" in
  Alcotest.(check string) "case-insensitive lookup" "MM" s.Kernels.name;
  (try
     ignore (Kernels.find "nope");
     Alcotest.fail "unknown kernel found"
   with Not_found -> ())

let test_exactly_one_store_each () =
  List.iter
    (fun (s : Kernels.spec) ->
      let nest = s.build (List.hd s.sizes) in
      let stores =
        Array.fold_left
          (fun acc (r : Nest.reference) ->
            if r.Nest.access = Nest.Write then acc + 1 else acc)
          0 nest.Nest.refs
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s stores" s.name)
        true (stores >= 1))
    Kernels.all

let test_mm_is_figure_1 () =
  let nest = Kernels.mm 8 in
  Alcotest.(check (array string)) "loops i,j,k" [| "i"; "j"; "k" |]
    (Nest.var_names nest);
  Alcotest.(check int) "4 references" 4 (Array.length nest.Nest.refs);
  (* a(i,j) read and written at the same subscripts *)
  let r0 = nest.Nest.refs.(0) and r3 = nest.Nest.refs.(3) in
  Alcotest.(check bool) "same array" true (r0.Nest.array == r3.Nest.array);
  Alcotest.(check bool) "same subscripts" true
    (Array.for_all2 Affine.equal r0.Nest.idx r3.Nest.idx)

let test_arrays_disjoint () =
  (* Placed arrays must not overlap in memory. *)
  List.iter
    (fun (s : Kernels.spec) ->
      let nest = s.build (List.hd s.sizes) in
      let spans =
        List.map
          (fun (a : Array_decl.t) ->
            (a.Array_decl.base, a.Array_decl.base + Array_decl.footprint a))
          nest.Nest.arrays
      in
      let sorted = List.sort compare spans in
      let rec check = function
        | (_, e1) :: (((b2, _) :: _) as rest) ->
            if e1 > b2 then Alcotest.failf "%s arrays overlap" s.name;
            check rest
        | _ -> ()
      in
      check sorted)
    Kernels.all

let test_addresses_within_footprint () =
  (* Every generated address must fall inside its array's allocation. *)
  List.iter
    (fun name ->
      let spec = Kernels.find name in
      let nest = spec.Kernels.build (List.hd spec.Kernels.sizes) in
      let nest =
        (* shrink large kernels for trace enumeration *)
        if Nest.trip_count nest > 200_000 then spec.Kernels.build 16 else nest
      in
      Array.iter
        (fun (r : Nest.reference) ->
          let f = Nest.address_form nest r in
          let lo = Array.map (fun _ -> 0) (Nest.var_names nest) in
          ignore lo;
          Nest.iter_points nest (fun p ->
              let addr = Affine.eval f p in
              let a = r.Nest.array in
              if addr < a.Array_decl.base
                 || addr >= a.Array_decl.base + Array_decl.footprint a
              then
                Alcotest.failf "%s: address %d outside %s" name addr
                  a.Array_decl.name))
        nest.Nest.refs)
    [ "MM"; "T2D"; "JACOBI3D"; "ADI"; "VPENTA1"; "VPENTA2"; "DPSSB"; "DPSSF";
      "DRADBG1"; "DRADFG1"; "DRADFG2"; "MATMUL" ]

let test_vpenta_alignment_pathology () =
  (* The conflict structure the paper's table 3 is about: consecutive
     VPENTA planes are whole multiples of the 8 KB cache apart. *)
  let nest = Kernels.vpenta1 128 in
  let bases =
    List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest.Nest.arrays
  in
  List.iter
    (fun b -> Alcotest.(check int) "base multiple of 8KB" 0 (b mod 8192))
    bases

let test_conflict_kernels_have_high_replacement () =
  (* ADD / BTRIX / VPENTA are conflict-dominated before any transformation
     (the reason they appear in table 3). *)
  List.iter
    (fun name ->
      let spec = Kernels.find name in
      let nest = spec.Kernels.build (List.hd spec.Kernels.sizes) in
      let e = Tiling_cme.Engine.create nest Tiling_cache.Config.dm8k in
      let r = Tiling_cme.Estimator.sample ~seed:13 e in
      let repl = r.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center in
      Alcotest.(check bool)
        (Printf.sprintf "%s replacement > 40%%" name)
        true (repl > 0.4))
    [ "ADD"; "BTRIX"; "VPENTA1"; "VPENTA2" ]

let suite =
  [
    Alcotest.test_case "all kernels build" `Quick test_all_build;
    Alcotest.test_case "table 1 count" `Quick test_count;
    Alcotest.test_case "find by name" `Quick test_find;
    Alcotest.test_case "stores present" `Quick test_exactly_one_store_each;
    Alcotest.test_case "MM is figure 1" `Quick test_mm_is_figure_1;
    Alcotest.test_case "arrays disjoint" `Quick test_arrays_disjoint;
    Alcotest.test_case "addresses within footprints" `Slow
      test_addresses_within_footprint;
    Alcotest.test_case "VPENTA alignment pathology" `Quick
      test_vpenta_alignment_pathology;
    Alcotest.test_case "conflict kernels replacement-heavy" `Slow
      test_conflict_kernels_have_high_replacement;
  ]
