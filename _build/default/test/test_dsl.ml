open Tiling_ir

let test_build_mm () =
  let nest = Tiling_kernels.Kernels.mm 4 in
  Alcotest.(check int) "refs" 4 (Array.length nest.Nest.refs);
  Alcotest.(check int) "arrays" 3 (List.length nest.Nest.arrays);
  (* program order preserved *)
  Alcotest.(check (list int)) "ref ids" [ 0; 1; 2; 3 ]
    (Array.to_list (Array.map (fun r -> r.Nest.ref_id) nest.Nest.refs));
  Alcotest.(check bool) "last is a store" true
    (nest.Nest.refs.(3).Nest.access = Nest.Write)

let test_one_based_subscripts () =
  (* a(i, j+1) at (i=1, j=1) must address element (0, 1) zero-based. *)
  let a = Array_decl.create "a" [| 8; 8 |] in
  let nest =
    Dsl.(
      nest ~name:"t"
        ~loops:[ ("i", 1, 8); ("j", 1, 7) ]
        ~body:[ load a [ v "i"; v "j" +! i 1 ] ]
        ())
  in
  let f = Nest.address_form nest nest.Nest.refs.(0) in
  Alcotest.(check int) "a(1,2) address" (8 * 8) (Affine.eval f [| 1; 1 |])

let test_ix_arithmetic () =
  let a = Array_decl.create "a" [| 64 |] in
  let nest =
    Dsl.(
      nest ~name:"t"
        ~loops:[ ("i", 1, 8) ]
        ~body:[ load a [ (3 *! v "i") -! i 2 ] ]
        ())
  in
  let f = Nest.address_form nest nest.Nest.refs.(0) in
  (* subscript 3i-2, zero-based 3i-3, times 8 bytes *)
  Alcotest.(check int) "i=1" 0 (Affine.eval f [| 1 |]);
  Alcotest.(check int) "i=4" (8 * 9) (Affine.eval f [| 4 |])

let test_steps () =
  let a = Array_decl.create "a" [| 32 |] in
  let nest =
    Dsl.(
      nest ~name:"t"
        ~loops:[ ("i", 1, 31) ]
        ~steps:[ ("i", 2) ]
        ~body:[ load a [ v "i" ] ]
        ())
  in
  Alcotest.(check int) "trip with step 2" 16 (Nest.trip_count nest)

let test_unknown_variable_rejected () =
  let a = Array_decl.create "a" [| 8 |] in
  try
    ignore Dsl.(nest ~name:"t" ~loops:[ ("i", 1, 8) ] ~body:[ load a [ v "z" ] ] ());
    Alcotest.fail "unknown variable accepted"
  with Invalid_argument _ -> ()

let test_rank_mismatch_rejected () =
  let a = Array_decl.create "a" [| 8; 8 |] in
  try
    ignore Dsl.(nest ~name:"t" ~loops:[ ("i", 1, 8) ] ~body:[ load a [ v "i" ] ] ());
    Alcotest.fail "rank mismatch accepted"
  with Invalid_argument _ -> ()

let test_empty_range_rejected () =
  let a = Array_decl.create "a" [| 8 |] in
  try
    ignore Dsl.(nest ~name:"t" ~loops:[ ("i", 5, 4) ] ~body:[ load a [ v "i" ] ] ());
    Alcotest.fail "empty range accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "build matrix multiply" `Quick test_build_mm;
    Alcotest.test_case "1-based subscripts" `Quick test_one_based_subscripts;
    Alcotest.test_case "index arithmetic" `Quick test_ix_arithmetic;
    Alcotest.test_case "loop steps" `Quick test_steps;
    Alcotest.test_case "unknown variable" `Quick test_unknown_variable_rejected;
    Alcotest.test_case "rank mismatch" `Quick test_rank_mismatch_rejected;
    Alcotest.test_case "empty range" `Quick test_empty_range_rejected;
  ]

let test_duplicate_variable_rejected () =
  let a = Array_decl.create "a" [| 8; 8 |] in
  try
    ignore
      Dsl.(
        nest ~name:"t"
          ~loops:[ ("i", 1, 8); ("i", 1, 8) ]
          ~body:[ load a [ v "i"; v "i" ] ]
          ());
    Alcotest.fail "duplicate loop variable accepted"
  with Invalid_argument _ -> ()

let suite =
  suite
  @ [
      Alcotest.test_case "duplicate variables" `Quick
        test_duplicate_variable_rejected;
    ]

let test_arrays_override_must_cover_body () =
  let a = Array_decl.create "a" [| 8 |] in
  let b = Array_decl.create "b" [| 8 |] in
  try
    ignore
      Dsl.(
        nest ~name:"t" ~arrays:[ b ]
          ~loops:[ ("i", 1, 8) ]
          ~body:[ load a [ v "i" ] ]
          ());
    Alcotest.fail "body array missing from ~arrays accepted"
  with Invalid_argument _ -> ()

let test_arrays_override_keeps_unreferenced () =
  let a = Array_decl.create "a" [| 8 |] in
  let b = Array_decl.create "b" [| 8 |] in
  let nest =
    Dsl.(
      nest ~name:"t" ~arrays:[ a; b ]
        ~loops:[ ("i", 1, 8) ]
        ~body:[ load a [ v "i" ] ]
        ())
  in
  Alcotest.(check int) "both arrays owned" 2 (List.length nest.Nest.arrays)

let suite =
  suite
  @ [
      Alcotest.test_case "~arrays must cover body" `Quick
        test_arrays_override_must_cover_body;
      Alcotest.test_case "~arrays keeps unreferenced" `Quick
        test_arrays_override_keeps_unreferenced;
    ]
