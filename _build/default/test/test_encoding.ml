open Tiling_ga

let qcheck = QCheck_alcotest.to_alcotest

let test_bits_for () =
  (* Paper: k = ceil(log2 U), +1 if odd. *)
  Alcotest.(check int) "U=10 -> 4 bits" 4 (Encoding.bits_for 10);
  Alcotest.(check int) "U=100 -> 8 bits (7 rounded up)" 8 (Encoding.bits_for 100);
  Alcotest.(check int) "U=1 -> 2 bits minimum" 2 (Encoding.bits_for 1);
  Alcotest.(check int) "U=2 -> 2 bits" 2 (Encoding.bits_for 2);
  Alcotest.(check int) "U=1024 -> 10 bits" 10 (Encoding.bits_for 1024)

let test_paper_example () =
  (* Section 3.3: U1=10, U2=100; value 12 decodes to 8 and 74 to 29. *)
  Alcotest.(check int) "g1(12) = 8" 8 (Encoding.decode_value ~bits:4 ~upper:10 12);
  Alcotest.(check int) "g2(74) = 29" 29 (Encoding.decode_value ~bits:8 ~upper:100 74)

let test_decode_bounds () =
  Alcotest.(check int) "g(0) = 1" 1 (Encoding.decode_value ~bits:4 ~upper:10 0);
  Alcotest.(check int) "g(max) = U" 10 (Encoding.decode_value ~bits:4 ~upper:10 15)

let test_every_value_representable () =
  (* Paper: every possible tile size has at least one representation. *)
  List.iter
    (fun upper ->
      let bits = Encoding.bits_for upper in
      let reachable = Array.make (upper + 1) false in
      for x = 0 to (1 lsl bits) - 1 do
        reachable.(Encoding.decode_value ~bits ~upper x) <- true
      done;
      for v = 1 to upper do
        if not reachable.(v) then
          Alcotest.failf "U=%d: tile %d unreachable" upper v
      done)
    [ 1; 2; 3; 7; 10; 100; 200; 500 ]

let test_individual_roundtrip () =
  let enc = Encoding.make [| 10; 100 |] in
  Alcotest.(check int) "total genes" (2 + 4) enc.Encoding.total_genes;
  let genes = Encoding.encode enc [| 8; 29 |] in
  Alcotest.(check (array int)) "decode (encode v) = v" [| 8; 29 |]
    (Encoding.decode enc genes)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip for arbitrary values"
    ~count:300
    QCheck.(pair (int_range 1 500) (int_range 1 500))
    (fun (u, v0) ->
      let v = 1 + (v0 mod u) in
      let enc = Encoding.make [| u |] in
      Encoding.decode enc (Encoding.encode enc [| v |]) = [| v |])

let prop_decode_in_range =
  QCheck.Test.make ~name:"random genes decode within [1, U]" ~count:300
    QCheck.(pair (int_range 1 1000) small_int)
    (fun (u, seed) ->
      let enc = Encoding.make [| u; u; u |] in
      let rng = Tiling_util.Prng.create ~seed in
      let values = Encoding.decode enc (Encoding.random_genes enc rng) in
      Array.for_all (fun v -> v >= 1 && v <= u) values)

let prop_decode_monotone =
  QCheck.Test.make ~name:"decode_value is monotone in x" ~count:200
    QCheck.(pair (int_range 2 300) (int_range 0 1000))
    (fun (u, x) ->
      let bits = Encoding.bits_for u in
      let x = x mod ((1 lsl bits) - 1) in
      Encoding.decode_value ~bits ~upper:u x
      <= Encoding.decode_value ~bits ~upper:u (x + 1))

let suite =
  [
    Alcotest.test_case "bits_for" `Quick test_bits_for;
    Alcotest.test_case "paper's worked example" `Quick test_paper_example;
    Alcotest.test_case "decode bounds" `Quick test_decode_bounds;
    Alcotest.test_case "full coverage of [1,U]" `Quick test_every_value_representable;
    Alcotest.test_case "individual roundtrip" `Quick test_individual_roundtrip;
    qcheck prop_roundtrip;
    qcheck prop_decode_in_range;
    qcheck prop_decode_monotone;
  ]
