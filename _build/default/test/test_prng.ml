open Tiling_util

let qcheck = QCheck_alcotest.to_alcotest

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_copy_independent () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b);
  ignore (Prng.bits64 a);
  (* advancing a must not affect b *)
  let b1 = Prng.bits64 b and b2 = Prng.bits64 b in
  Alcotest.(check bool) "copy advances on its own" true (b1 <> b2)

let test_split_decorrelated () =
  let a = Prng.create ~seed:5 in
  let b = Prng.split a in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_int_range () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.fail "int out of range"
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in g ~lo:(-3) ~hi:4 in
    if v < -3 || v > 4 then Alcotest.fail "int_in out of range"
  done

let test_int_uniformity () =
  let g = Prng.create ~seed:11 in
  let n = 10 and draws = 100_000 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let v = Prng.int g n in
    counts.(v) <- counts.(v) + 1
  done;
  let expect = float_of_int draws /. float_of_int n in
  Array.iteri
    (fun i c ->
      let dev = abs_float (float_of_int c -. expect) /. expect in
      if dev > 0.05 then
        Alcotest.failf "bucket %d off by %.1f%% (expected ~%g, got %d)" i
          (100. *. dev) expect c)
    counts

let test_float_range () =
  let g = Prng.create ~seed:4 in
  let sum = ref 0. in
  for _ = 1 to 10_000 do
    let v = Prng.float g in
    if v < 0. || v >= 1. then Alcotest.fail "float out of [0,1)";
    sum := !sum +. v
  done;
  let mean = !sum /. 10_000. in
  Alcotest.(check bool) "mean near 1/2" true (abs_float (mean -. 0.5) < 0.02)

let test_bernoulli_extremes () =
  let g = Prng.create ~seed:6 in
  for _ = 1 to 100 do
    if Prng.bernoulli g ~p:0. then Alcotest.fail "p=0 must be false";
    if not (Prng.bernoulli g ~p:1.) then Alcotest.fail "p=1 must be true"
  done

let test_bernoulli_rate () =
  let g = Prng.create ~seed:8 in
  let hits = ref 0 in
  for _ = 1 to 50_000 do
    if Prng.bernoulli g ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 50_000. in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.02)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      let b = Array.copy a in
      Prng.shuffle (Prng.create ~seed) b;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

let prop_sample_without_replacement =
  QCheck.Test.make ~name:"sample_without_replacement: distinct, in range"
    ~count:300
    QCheck.(triple small_int (int_range 0 200) (int_range 0 200))
    (fun (seed, n0, k0) ->
      let n = max n0 k0 and k = min n0 k0 in
      let s = Prng.sample_without_replacement (Prng.create ~seed) ~n ~k in
      Array.length s = k
      && Array.for_all (fun v -> v >= 0 && v < n) s
      && List.length (List.sort_uniq compare (Array.to_list s)) = k)

let test_sample_huge_population () =
  let g = Prng.create ~seed:12 in
  let s = Prng.sample_without_replacement g ~n:max_int ~k:100 in
  Alcotest.(check int) "k draws" 100
    (List.length (List.sort_uniq compare (Array.to_list s)))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "split" `Quick test_split_decorrelated;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "float range/mean" `Quick test_float_range;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "huge population sample" `Quick test_sample_huge_population;
    qcheck prop_shuffle_permutation;
    qcheck prop_sample_without_replacement;
  ]
