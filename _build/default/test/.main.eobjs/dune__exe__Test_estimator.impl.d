test/test_estimator.ml: Alcotest Array Engine Estimator Printf Tiling_cache Tiling_cme Tiling_ir Tiling_kernels Tiling_trace Tiling_util Transform
