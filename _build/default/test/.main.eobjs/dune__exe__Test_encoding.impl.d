test/test_encoding.ml: Alcotest Array Encoding List QCheck QCheck_alcotest Tiling_ga Tiling_util
