test/test_affine.ml: Affine Alcotest Array QCheck QCheck_alcotest Tiling_ir
