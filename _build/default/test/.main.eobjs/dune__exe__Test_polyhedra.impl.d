test/test_polyhedra.ml: Alcotest Array List Polyhedron QCheck QCheck_alcotest Tiling_polyhedra
