test/test_box.ml: Affine Alcotest Array Box Fun List QCheck QCheck_alcotest Tiling_cme Tiling_ir
