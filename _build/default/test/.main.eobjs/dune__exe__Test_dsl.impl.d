test/test_dsl.ml: Affine Alcotest Array Array_decl Dsl List Nest Tiling_ir Tiling_kernels
