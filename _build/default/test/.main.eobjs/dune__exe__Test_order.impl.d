test/test_order.ml: Alcotest Array List Printf Tiler Tiling_cache Tiling_cme Tiling_core Tiling_ga Tiling_kernels Tiling_util
