test/test_engine.ml: Alcotest Array List Nest QCheck QCheck_alcotest Tiling_cache Tiling_cme Tiling_ir Tiling_kernels Tiling_trace Tiling_util Transform
