test/main.mli:
