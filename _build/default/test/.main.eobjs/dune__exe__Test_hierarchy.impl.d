test/test_hierarchy.ml: Alcotest Array Config Hierarchy List Sim Tiling_cache Tiling_cme Tiling_ir Tiling_kernels Tiling_trace Tiling_util
