test/test_baselines.ml: Affine Alcotest Analytic Annealing Array List Nest Search Tiling_baselines Tiling_cache Tiling_core Tiling_ga Tiling_ir Tiling_kernels Transform
