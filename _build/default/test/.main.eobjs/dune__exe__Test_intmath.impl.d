test/test_intmath.ml: Alcotest Intmath QCheck QCheck_alcotest Tiling_util
