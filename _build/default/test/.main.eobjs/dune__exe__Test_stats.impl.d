test/test_stats.ml: Alcotest Array Gen QCheck QCheck_alcotest Stats Tiling_util
