test/test_path.ml: Alcotest Array Array_decl Box Dsl List Nest Path Printf QCheck QCheck_alcotest String Tiling_cme Tiling_ir Tiling_kernels Tiling_util Transform
