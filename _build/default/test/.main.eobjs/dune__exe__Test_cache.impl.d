test/test_cache.ml: Alcotest Array Config List Sim Tiling_cache Tiling_kernels Tiling_trace
