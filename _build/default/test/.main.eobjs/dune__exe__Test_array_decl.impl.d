test/test_array_decl.ml: Alcotest Array_decl Tiling_ir
