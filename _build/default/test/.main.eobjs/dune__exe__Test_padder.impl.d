test/test_padder.ml: Alcotest Array Array_decl List Nest Optimizer Padder Tiler Tiling_cache Tiling_cme Tiling_core Tiling_ga Tiling_ir Tiling_kernels Tiling_util Transform
