test/test_amat.ml: Alcotest Amat Array Config Sim Tiling_cache Tiling_cme Tiling_codegen Tiling_ir Tiling_kernels Tiling_trace Tiling_util
