test/test_transform.ml: Alcotest Array Array_decl List Nest Printf QCheck QCheck_alcotest String Tiling_cache Tiling_ir Tiling_kernels Tiling_trace Transform
