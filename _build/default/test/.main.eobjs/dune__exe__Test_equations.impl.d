test/test_equations.ml: Alcotest Equations Tiling_cme Tiling_ir Tiling_kernels Transform
