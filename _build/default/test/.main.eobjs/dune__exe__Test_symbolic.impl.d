test/test_symbolic.ml: Alcotest Array Engine List Nest Printf QCheck QCheck_alcotest Symbolic Tiling_cache Tiling_cme Tiling_ir Tiling_kernels Tiling_polyhedra Tiling_trace Transform
