test/test_ga.ml: Alcotest Array Encoding Engine List Printf Tiling_ga Tiling_util
