test/test_kernels.ml: Affine Alcotest Array Array_decl Kernels List Nest Printf Tiling_cache Tiling_cme Tiling_ir Tiling_kernels Tiling_util
