test/test_codegen.ml: Alcotest C_gen Filename Fortran_gen Fun Int64 Printf QCheck QCheck_alcotest String Sys Tiling_codegen Tiling_ir Tiling_kernels Transform Unix
