test/test_prng.ml: Alcotest Array List Prng QCheck QCheck_alcotest Tiling_util
