test/test_trace.ml: Alcotest Array Array_decl List Nest Tiling_cache Tiling_ir Tiling_kernels Tiling_trace Transform
