test/test_tiler.ml: Alcotest Array Float Sample Tiler Tiling_cache Tiling_cme Tiling_core Tiling_ga Tiling_ir Tiling_kernels Tiling_util
