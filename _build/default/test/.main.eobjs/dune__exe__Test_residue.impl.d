test/test_residue.ml: Alcotest Intmath List Printf QCheck QCheck_alcotest Residue_set Tiling_util
