test/test_par.ml: Alcotest Array Fun List Par Printf Tiling_cache Tiling_core Tiling_ga Tiling_kernels Tiling_util
