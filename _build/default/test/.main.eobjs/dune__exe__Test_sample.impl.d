test/test_sample.ml: Alcotest Array List Nest Sample Tiling_core Tiling_ir Tiling_kernels Transform
