test/test_random_kernels.ml: Array Array_decl Dsl Fun List Printf QCheck QCheck_alcotest String Tiling_cache Tiling_cme Tiling_ir Tiling_trace Tiling_util Transform
