test/test_nest.ml: Affine Alcotest Array Array_decl Fmt List Nest QCheck QCheck_alcotest String Tiling_ir Tiling_kernels Tiling_util Transform
