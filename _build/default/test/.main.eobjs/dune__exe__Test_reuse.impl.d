test/test_reuse.ml: Alcotest Array Array_decl Dsl List Tiling_ir Tiling_kernels Tiling_reuse Transform Vectors
