open Tiling_util

let qcheck = QCheck_alcotest.to_alcotest

(* Naive model: a residue set as a sorted int list. *)
let model_of_progression m ~start ~step ~count =
  List.sort_uniq compare
    (List.init count (fun i -> Intmath.pos_mod (start + (i * step)) m))

let to_model t = Residue_set.elements t

let test_basics () =
  let t = Residue_set.create 10 in
  Alcotest.(check bool) "empty" true (Residue_set.is_empty t);
  Residue_set.add t 3;
  Residue_set.add t 13;
  (* = 3 mod 10 *)
  Residue_set.add t (-1);
  (* = 9 *)
  Alcotest.(check int) "cardinal" 2 (Residue_set.cardinal t);
  Alcotest.(check bool) "mem 3" true (Residue_set.mem t 3);
  Alcotest.(check bool) "mem 9" true (Residue_set.mem t 9);
  Alcotest.(check bool) "not mem 4" false (Residue_set.mem t 4);
  Alcotest.(check (list int)) "elements" [ 3; 9 ] (to_model t)

let test_full () =
  List.iter
    (fun m ->
      let t = Residue_set.full m in
      Alcotest.(check int) (Printf.sprintf "full %d cardinal" m) m
        (Residue_set.cardinal t);
      Alcotest.(check bool) "is_full" true (Residue_set.is_full t))
    [ 1; 7; 62; 63; 64; 124; 1024; 8192 ]

let test_rotate_small_and_large () =
  List.iter
    (fun m ->
      let t = Residue_set.create m in
      Residue_set.add t 0;
      Residue_set.add t 1;
      Residue_set.add t (m - 1);
      let r = Residue_set.rotate t 5 in
      let expected =
        List.sort_uniq compare
          (List.map (fun x -> Intmath.pos_mod (x + 5) m) [ 0; 1; m - 1 ])
      in
      Alcotest.(check (list int)) (Printf.sprintf "rotate m=%d" m) expected
        (to_model r))
    [ 8; 62; 64; 300; 8192 ]

let test_sum_progression_exact () =
  (* {0} + {0, 3, 6, 9} mod 10 = {0, 3, 6, 9} *)
  let t = Residue_set.singleton 10 0 in
  let s = Residue_set.sum_progression t ~step:3 ~count:4 in
  Alcotest.(check (list int)) "steps of 3" [ 0; 3; 6; 9 ] (to_model s);
  (* long progression wraps to the full subgroup <2> in Z_10 *)
  let s = Residue_set.sum_progression t ~step:2 ~count:100 in
  Alcotest.(check (list int)) "subgroup <2>" [ 0; 2; 4; 6; 8 ] (to_model s)

let test_hits_window () =
  let t = Residue_set.singleton 100 42 in
  Alcotest.(check bool) "window hit" true (Residue_set.hits_window t ~lo:40 ~len:5);
  Alcotest.(check bool) "window miss" false (Residue_set.hits_window t ~lo:43 ~len:5);
  (* wrap-around window *)
  let t = Residue_set.singleton 100 2 in
  Alcotest.(check bool) "wrapping window hit" true
    (Residue_set.hits_window t ~lo:95 ~len:10);
  Alcotest.(check bool) "zero-length window" false
    (Residue_set.hits_window t ~lo:2 ~len:0);
  Alcotest.(check bool) "full-modulus window" true
    (Residue_set.hits_window t ~lo:55 ~len:100)

let test_count_window () =
  let t = Residue_set.create 50 in
  List.iter (Residue_set.add t) [ 0; 10; 20; 30; 40 ];
  Alcotest.(check int) "count [5,35)" 3 (Residue_set.count_window t ~lo:5 ~len:30);
  Alcotest.(check int) "count wraps" 2 (Residue_set.count_window t ~lo:35 ~len:20)

let test_union_inter () =
  let a = Residue_set.create 20 and b = Residue_set.create 20 in
  List.iter (Residue_set.add a) [ 1; 2; 3 ];
  List.iter (Residue_set.add b) [ 3; 4 ];
  Residue_set.union_into ~dst:a b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (to_model a);
  let i = Residue_set.inter a b in
  Alcotest.(check (list int)) "inter" [ 3; 4 ] (to_model i)

(* Random-model differential tests. *)

let gen_params =
  QCheck.Gen.(
    let* m = oneofl [ 7; 32; 61; 62; 63; 64; 127; 256; 1024 ] in
    let* start = int_range (-200) 200 in
    let* step = int_range (-300) 300 in
    let* count = int_range 1 200 in
    return (m, start, step, count))

let prop_sum_progression =
  QCheck.Test.make ~name:"sum_progression equals naive sumset" ~count:400
    (QCheck.make gen_params) (fun (m, start, step, count) ->
      let base = Residue_set.singleton m start in
      let got = to_model (Residue_set.sum_progression base ~step ~count) in
      let want = model_of_progression m ~start ~step ~count in
      got = want)

let prop_rotate =
  QCheck.Test.make ~name:"rotate equals naive shift" ~count:400
    (QCheck.make
       QCheck.Gen.(
         let* m = oneofl [ 5; 62; 64; 100; 8192 ] in
         let* k = int_range (-10000) 10000 in
         let* elems = list_size (int_range 0 20) (int_range 0 (m - 1)) in
         return (m, k, elems)))
    (fun (m, k, elems) ->
      let t = Residue_set.create m in
      List.iter (Residue_set.add t) elems;
      let got = to_model (Residue_set.rotate t k) in
      let want =
        List.sort_uniq compare (List.map (fun x -> Intmath.pos_mod (x + k) m) elems)
      in
      got = want)

let prop_window =
  QCheck.Test.make ~name:"hits_window / count_window vs naive" ~count:400
    (QCheck.make
       QCheck.Gen.(
         let* m = oneofl [ 13; 62; 64; 100 ] in
         let* elems = list_size (int_range 0 15) (int_range 0 (m - 1)) in
         let* lo = int_range (-50) 200 in
         let* len = int_range 0 (2 * m) in
         return (m, elems, lo, len)))
    (fun (m, elems, lo, len) ->
      let t = Residue_set.create m in
      List.iter (Residue_set.add t) elems;
      let in_window r =
        len > 0
        && (let d = Intmath.pos_mod (r - lo) m in
            d < min len m)
      in
      let want = List.sort_uniq compare (List.filter in_window elems) in
      Residue_set.hits_window t ~lo ~len = (want <> [])
      && Residue_set.count_window t ~lo ~len = List.length want)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "full sets" `Quick test_full;
    Alcotest.test_case "rotate" `Quick test_rotate_small_and_large;
    Alcotest.test_case "sum_progression exact" `Quick test_sum_progression_exact;
    Alcotest.test_case "hits_window" `Quick test_hits_window;
    Alcotest.test_case "count_window" `Quick test_count_window;
    Alcotest.test_case "union/inter" `Quick test_union_inter;
    qcheck prop_sum_progression;
    qcheck prop_rotate;
    qcheck prop_window;
  ]
