open Tiling_ir
open Tiling_core

let test_default_size () =
  let s = Sample.create ~seed:1 (Tiling_kernels.Kernels.mm 50) in
  Alcotest.(check int) "paper's 164 points" 164 (Sample.size s)

let test_points_in_space () =
  let nest = Tiling_kernels.Kernels.mm 50 in
  let s = Sample.create ~seed:2 nest in
  Array.iter
    (fun p ->
      if not (Nest.mem_point nest p) then Alcotest.fail "sample point outside")
    (Sample.points s)

let test_embed_membership () =
  let nest = Tiling_kernels.Kernels.mm 50 in
  let s = Sample.create ~seed:3 nest in
  List.iter
    (fun tiles ->
      let tiled = Transform.tile nest tiles in
      Array.iter
        (fun q ->
          if not (Nest.mem_point tiled q) then
            Alcotest.fail "embedded point outside tiled space")
        (Sample.embed s ~tiles))
    [ [| 1; 1; 1 |]; [| 50; 50; 50 |]; [| 7; 13; 29 |] ]

let test_embed_preserves_original_coordinates () =
  let nest = Tiling_kernels.Kernels.mm 20 in
  let s = Sample.create ~n:32 ~seed:4 nest in
  let tiles = [| 6; 5; 7 |] in
  let embedded = Sample.embed s ~tiles in
  Array.iteri
    (fun i q ->
      let p = (Sample.points s).(i) in
      for l = 0 to 2 do
        Alcotest.(check int) "element coords = original" p.(l) q.(3 + l);
        (* control coordinate is the tile start containing the value *)
        Alcotest.(check int) "ctrl coord"
          (1 + ((p.(l) - 1) / tiles.(l) * tiles.(l)))
          q.(l)
      done)
    embedded

let test_deterministic () =
  let nest = Tiling_kernels.Kernels.t2d 100 in
  let s1 = Sample.create ~seed:5 nest and s2 = Sample.create ~seed:5 nest in
  Alcotest.(check bool) "same points" true (Sample.points s1 = Sample.points s2)

let test_rejects_tiled_nest () =
  let tiled = Transform.tile (Tiling_kernels.Kernels.mm 10) [| 2; 2; 2 |] in
  try
    ignore (Sample.create ~seed:6 tiled);
    Alcotest.fail "tiled nest accepted"
  with Invalid_argument _ -> ()

let test_custom_size () =
  let s = Sample.create ~n:17 ~seed:7 (Tiling_kernels.Kernels.mm 10) in
  Alcotest.(check int) "custom n" 17 (Sample.size s)

let suite =
  [
    Alcotest.test_case "default size 164" `Quick test_default_size;
    Alcotest.test_case "points in space" `Quick test_points_in_space;
    Alcotest.test_case "embedding membership" `Quick test_embed_membership;
    Alcotest.test_case "embedding preserves coordinates" `Quick
      test_embed_preserves_original_coordinates;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "rejects tiled nests" `Quick test_rejects_tiled_nest;
    Alcotest.test_case "custom size" `Quick test_custom_size;
  ]
