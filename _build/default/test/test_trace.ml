open Tiling_ir

let test_length () =
  let nest = Tiling_kernels.Kernels.mm 5 in
  Alcotest.(check int) "5^3 * 4 refs" (125 * 4) (Tiling_trace.Gen.length nest);
  let count = ref 0 in
  Tiling_trace.Gen.iter nest (fun _ -> incr count);
  Alcotest.(check int) "iter emits length events" (Tiling_trace.Gen.length nest)
    !count

let test_program_order_within_iteration () =
  let nest = Tiling_kernels.Kernels.mm 3 in
  let ids = ref [] in
  Tiling_trace.Gen.iter nest (fun ev -> ids := ev.Tiling_trace.Gen.ref_id :: !ids);
  let ids = Array.of_list (List.rev !ids) in
  Array.iteri
    (fun i id ->
      if id <> i mod 4 then Alcotest.fail "references out of program order")
    ids

let test_first_events () =
  (* MM at (1,1,1): a(1,1), b(1,1), c(1,1), a(1,1). *)
  let nest = Tiling_kernels.Kernels.mm 4 in
  let bases =
    List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest.Nest.arrays
  in
  let seen = ref [] in
  (try
     Tiling_trace.Gen.iter nest (fun ev ->
         seen := ev.Tiling_trace.Gen.addr :: !seen;
         if List.length !seen = 4 then raise Exit)
   with Exit -> ());
  Alcotest.(check (list int)) "first iteration addresses"
    (match bases with
    | [ a; b; c ] -> [ a; b; c; a ]
    | _ -> assert false)
    (List.rev !seen)

let test_events_at () =
  let nest = Tiling_kernels.Kernels.t2d 8 in
  let evs = Tiling_trace.Gen.events_at nest [| 2; 3 |] in
  Alcotest.(check int) "two references" 2 (List.length evs);
  (* b(2,3) read, a(3,2) write; b base = 8*8*8 *)
  (match evs with
  | [ b_ev; a_ev ] ->
      Alcotest.(check bool) "b is read" true (b_ev.Tiling_trace.Gen.access = Nest.Read);
      Alcotest.(check bool) "a is write" true (a_ev.Tiling_trace.Gen.access = Nest.Write);
      Alcotest.(check int) "b(2,3) addr" (512 + (8 * (1 + (8 * 2))))
        b_ev.Tiling_trace.Gen.addr;
      Alcotest.(check int) "a(3,2) addr" (8 * (2 + (8 * 1))) a_ev.Tiling_trace.Gen.addr
  | _ -> Alcotest.fail "expected two events");
  ()

let test_tiled_trace_same_multiset_different_order () =
  let nest = Tiling_kernels.Kernels.t2d 10 in
  let order nest =
    let acc = ref [] in
    Tiling_trace.Gen.iter nest (fun ev -> acc := ev.Tiling_trace.Gen.addr :: !acc);
    List.rev !acc
  in
  let plain = order nest and tiled = order (Transform.tile nest [| 3; 4 |]) in
  Alcotest.(check bool) "different order" true (plain <> tiled);
  Alcotest.(check (list int)) "same multiset" (List.sort compare plain)
    (List.sort compare tiled)

let test_simulate_report () =
  let nest = Tiling_kernels.Kernels.mm 8 in
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  let r = Tiling_trace.Run.simulate nest cache in
  Alcotest.(check int) "accesses" (512 * 4) r.Tiling_trace.Run.total.Tiling_cache.Sim.accesses;
  Alcotest.(check int) "per-ref sums to total"
    r.Tiling_trace.Run.total.Tiling_cache.Sim.misses
    (Array.fold_left
       (fun acc c -> acc + c.Tiling_cache.Sim.misses)
       0 r.Tiling_trace.Run.per_ref);
  (* all three 8x8 arrays are touched entirely: 3*64*8/32 lines *)
  Alcotest.(check int) "lines touched" 48 r.Tiling_trace.Run.lines_touched

let suite =
  [
    Alcotest.test_case "trace length" `Quick test_length;
    Alcotest.test_case "program order" `Quick test_program_order_within_iteration;
    Alcotest.test_case "first events" `Quick test_first_events;
    Alcotest.test_case "events_at" `Quick test_events_at;
    Alcotest.test_case "tiled trace reorders only" `Quick
      test_tiled_trace_same_multiset_different_order;
    Alcotest.test_case "simulate report" `Quick test_simulate_report;
  ]
