open Tiling_ir
open Tiling_cme

let test_untiled () =
  let nest = Tiling_kernels.Kernels.mm 16 in
  let s = Equations.summarize nest ~line:32 in
  Alcotest.(check int) "one region" 1 s.Equations.regions;
  Alcotest.(check int) "four references" 4 s.Equations.references;
  Alcotest.(check bool) "has reuse vectors" true (s.Equations.reuse_vectors > 0);
  Alcotest.(check int) "compulsory = vectors * regions" s.Equations.reuse_vectors
    s.Equations.compulsory_equations

let test_region_scaling () =
  (* Section 2.4: compulsory equations scale by n, replacement by n^2. *)
  let nest = Tiling_kernels.Kernels.mm 10 in
  let exact = Equations.summarize (Transform.tile nest [| 2; 5; 10 |]) ~line:32 in
  let ragged = Equations.summarize (Transform.tile nest [| 3; 4; 7 |]) ~line:32 in
  Alcotest.(check int) "dividing tiles: 1 region" 1 exact.Equations.regions;
  Alcotest.(check int) "ragged tiles: 8 regions" 8 ragged.Equations.regions;
  Alcotest.(check int) "compulsory scales by regions"
    (ragged.Equations.reuse_vectors * 8)
    ragged.Equations.compulsory_equations;
  Alcotest.(check int) "replacement scales by regions^2"
    (ragged.Equations.reuse_vectors * ragged.Equations.references * 64)
    ragged.Equations.replacement_equations

let test_tiling_grows_equations () =
  let nest = Tiling_kernels.Kernels.mm 16 in
  let before = Equations.summarize nest ~line:32 in
  let after = Equations.summarize (Transform.tile nest [| 3; 5; 7 |]) ~line:32 in
  Alcotest.(check bool) "more replacement equations after tiling" true
    (after.Equations.replacement_equations > before.Equations.replacement_equations)

let suite =
  [
    Alcotest.test_case "untiled census" `Quick test_untiled;
    Alcotest.test_case "region scaling" `Quick test_region_scaling;
    Alcotest.test_case "tiling grows the system" `Quick test_tiling_grows_equations;
  ]
