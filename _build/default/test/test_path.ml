open Tiling_ir
open Tiling_cme

let qcheck = QCheck_alcotest.to_alcotest

(* Reference model: enumerate all points of the nest and keep those
   strictly between src and dst in lexicographic order. *)
let model_between nest ~src ~dst =
  let acc = ref [] in
  Nest.iter_points nest (fun p ->
      if Nest.lex_compare src p < 0 && Nest.lex_compare p dst < 0 then
        acc := Array.to_list p :: !acc);
  List.sort compare !acc

let boxes_points boxes =
  let acc = ref [] in
  List.iter (fun b -> Box.iter_points b (fun p -> acc := Array.to_list p :: !acc)) boxes;
  List.sort compare !acc

let check_between nest ~src ~dst =
  let got = boxes_points (Path.between nest ~src ~dst) in
  let want = model_between nest ~src ~dst in
  if got <> want then
    Alcotest.failf "between %s .. %s: got %d points, want %d (src/dst nest %s)"
      (String.concat "," (List.map string_of_int (Array.to_list src)))
      (String.concat "," (List.map string_of_int (Array.to_list dst)))
      (List.length got) (List.length want) nest.Nest.name;
  (* disjointness: multiset size must equal set size *)
  Alcotest.(check int) "disjoint boxes" (List.length got)
    (List.length (List.sort_uniq compare got))

let test_between_plain () =
  let nest = Tiling_kernels.Kernels.mm 4 in
  check_between nest ~src:[| 1; 1; 1 |] ~dst:[| 1; 1; 1 |];
  check_between nest ~src:[| 1; 1; 1 |] ~dst:[| 1; 1; 2 |];
  check_between nest ~src:[| 1; 1; 1 |] ~dst:[| 4; 4; 4 |];
  check_between nest ~src:[| 2; 3; 4 |] ~dst:[| 3; 2; 1 |];
  check_between nest ~src:[| 1; 4; 4 |] ~dst:[| 2; 1; 1 |]

let test_between_tiled () =
  let nest = Transform.tile (Tiling_kernels.Kernels.mm 7) [| 3; 2; 7 |] in
  (* adjacent points within a tile *)
  check_between nest ~src:[| 1; 1; 1; 1; 1; 1 |] ~dst:[| 1; 1; 1; 1; 1; 3 |];
  (* across a tile boundary *)
  check_between nest ~src:[| 1; 1; 1; 2; 2; 6 |] ~dst:[| 4; 3; 1; 5; 3; 2 |];
  (* across the partial i-tile (7 = 2*3 + 1) *)
  check_between nest ~src:[| 4; 5; 1; 5; 5; 4 |] ~dst:[| 7; 7; 1; 7; 7; 2 |];
  (* whole space *)
  check_between nest ~src:[| 1; 1; 1; 1; 1; 1 |] ~dst:[| 7; 7; 1; 7; 7; 7 |]

let test_full_space () =
  List.iter
    (fun nest ->
      let total =
        List.fold_left (fun acc b -> acc + Box.points b) 0 (Path.full_space nest)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s full space" nest.Nest.name)
        (Nest.trip_count nest) total)
    [
      Tiling_kernels.Kernels.mm 5;
      Transform.tile (Tiling_kernels.Kernels.mm 7) [| 3; 2; 7 |];
      Transform.tile (Tiling_kernels.Kernels.t2d 9) [| 4; 5 |];
      Tiling_kernels.Kernels.jacobi3d 6;
    ]

let test_full_space_region_count () =
  (* Section 2.4: one convex region per combination of full/partial tiles. *)
  let nest = Tiling_kernels.Kernels.mm 10 in
  let regions tiles = List.length (Path.full_space (Transform.tile nest tiles)) in
  Alcotest.(check int) "all dividing" 1 (regions [| 2; 5; 10 |]);
  Alcotest.(check int) "one ragged dim" 2 (regions [| 3; 5; 10 |]);
  Alcotest.(check int) "two ragged dims" 4 (regions [| 3; 4; 10 |]);
  Alcotest.(check int) "three ragged dims" 8 (regions [| 3; 4; 7 |])

let prop_between_random_tiled =
  QCheck.Test.make ~name:"between matches enumeration on random tiled pairs"
    ~count:60
    (QCheck.make
       QCheck.Gen.(
         let* t1 = int_range 1 6 in
         let* t2 = int_range 1 6 in
         let* seed = int_range 0 10000 in
         return (t1, t2, seed)))
    (fun (t1, t2, seed) ->
      let nest = Transform.tile (Tiling_kernels.Kernels.t2d 6) [| t1; t2 |] in
      let rng = Tiling_util.Prng.create ~seed in
      let a = Nest.random_point nest rng in
      let b = Nest.random_point nest rng in
      let src, dst = if Nest.lex_compare a b <= 0 then (a, b) else (b, a) in
      boxes_points (Path.between nest ~src ~dst) = model_between nest ~src ~dst)

let suite =
  [
    Alcotest.test_case "between on plain nests" `Quick test_between_plain;
    Alcotest.test_case "between on tiled nests" `Quick test_between_tiled;
    Alcotest.test_case "full space covers trip count" `Quick test_full_space;
    Alcotest.test_case "convex region count" `Quick test_full_space_region_count;
    qcheck prop_between_random_tiled;
  ]

let test_between_four_deep_tiled () =
  (* An ADD-shaped 4-deep nest, tiled: 8 dims, multiple ragged tile pairs. *)
  let u = Array_decl.create "u" [| 3; 5; 5; 5 |] in
  let nest =
    Dsl.(
      nest ~name:"add4"
        ~loops:[ ("k", 1, 5); ("j", 1, 5); ("i", 1, 5); ("m", 1, 3) ]
        ~body:[ load u [ v "m"; v "i"; v "j"; v "k" ] ]
        ())
  in
  let tiled = Transform.tile nest [| 2; 3; 5; 2 |] in
  let rng = Tiling_util.Prng.create ~seed:77 in
  for _ = 1 to 25 do
    let a = Nest.random_point tiled rng in
    let b = Nest.random_point tiled rng in
    let src, dst = if Nest.lex_compare a b <= 0 then (a, b) else (b, a) in
    check_between tiled ~src ~dst
  done

let suite =
  suite
  @ [
      Alcotest.test_case "between on a 4-deep tiled nest" `Quick
        test_between_four_deep_tiled;
    ]
