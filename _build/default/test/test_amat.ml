open Tiling_cache

let close msg a b = Alcotest.(check (float 1e-9)) msg a b

let test_amat_basics () =
  close "no misses = hit time" 1. (Amat.amat ~miss_ratio:0. ());
  close "all misses" 101. (Amat.amat ~miss_ratio:1. ());
  close "intro's example" (1. +. 30.) (Amat.amat ~miss_ratio:0.3 ())

let test_speedup () =
  (* MM-style: 32% -> 3% misses at 100-cycle memory: ~8.3x memory-time win *)
  let s = Amat.speedup ~before:0.32 ~after:0.03 () in
  Alcotest.(check bool) "speedup in a sane band" true (s > 7. && s < 9.);
  close "no change" 1. (Amat.speedup ~before:0.1 ~after:0.1 ())

let test_hierarchy_amat () =
  let l1 = { Amat.hit = 1.; memory = 0. } in
  let l2 = { Amat.hit = 10.; memory = 100. } in
  (* 10% global L1 misses, 2% global L2 misses *)
  let v = Amat.amat_hierarchy [ l1; l2 ] ~miss_ratios:[ 0.1; 0.02 ] in
  close "two-level AMAT" (1. +. (0.1 *. 10.) +. (0.02 *. 100.)) v;
  (try
     ignore (Amat.amat_hierarchy [ l1 ] ~miss_ratios:[ 0.1; 0.02 ]);
     Alcotest.fail "level mismatch accepted"
   with Invalid_argument _ -> ())

let test_random_kernel_generator () =
  let nest = Tiling_kernels.Random_kernel.generate ~seed:3 () in
  Alcotest.(check bool) "has references" true
    (Array.length nest.Tiling_ir.Nest.refs > 0);
  (* deterministic *)
  let nest2 = Tiling_kernels.Random_kernel.generate ~seed:3 () in
  Alcotest.(check string) "same name" nest.Tiling_ir.Nest.name nest2.Tiling_ir.Nest.name;
  let h1 = Tiling_codegen.C_gen.access_stream_hash nest in
  let h2 = Tiling_codegen.C_gen.access_stream_hash nest2 in
  Alcotest.(check int64) "same access stream" h1 h2;
  (* and analysable: CME matches the simulator on it *)
  let cache = Config.make ~size:512 ~line:32 () in
  let sim = Tiling_trace.Run.simulate nest cache in
  let est = Tiling_cme.Estimator.exact (Tiling_cme.Engine.create nest cache) in
  let d =
    abs_float
      (Sim.miss_ratio sim.Tiling_trace.Run.total
      -. est.Tiling_cme.Estimator.miss_ratio.Tiling_util.Stats.center)
  in
  Alcotest.(check bool) "CME close to simulator" true (d < 0.02)

let suite =
  [
    Alcotest.test_case "amat basics" `Quick test_amat_basics;
    Alcotest.test_case "speedup" `Quick test_speedup;
    Alcotest.test_case "hierarchy amat" `Quick test_hierarchy_amat;
    Alcotest.test_case "random kernel generator" `Quick test_random_kernel_generator;
  ]
