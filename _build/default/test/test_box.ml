open Tiling_ir
open Tiling_cme

let qcheck = QCheck_alcotest.to_alcotest

let mk_box origin entries =
  { Box.origin; entries = List.map (fun (targets, count) -> { Box.targets; count }) entries }

let test_points_count () =
  let b = mk_box [| 0; 0 |] [ ([ (0, 1) ], 3); ([ (1, 2) ], 4) ] in
  Alcotest.(check int) "3*4 points" 12 (Box.points b);
  let empty_entries = mk_box [| 5; 7 |] [] in
  Alcotest.(check int) "single point" 1 (Box.points empty_entries)

let test_point_at_and_iter () =
  let b = mk_box [| 1; 10 |] [ ([ (0, 2) ], 3); ([ (1, -1) ], 2) ] in
  Alcotest.(check (array int)) "origin" [| 1; 10 |] (Box.point_at b [| 0; 0 |]);
  Alcotest.(check (array int)) "step both" [| 5; 9 |] (Box.point_at b [| 2; 1 |]);
  let pts = ref [] in
  Box.iter_points b (fun p -> pts := Array.to_list p :: !pts);
  Alcotest.(check int) "iterates all" 6 (List.length !pts);
  Alcotest.(check int) "all distinct" 6 (List.length (List.sort_uniq compare !pts))

let test_coupled_targets () =
  (* One entry driving two variables, as in a ctrl+elem pair. *)
  let b = mk_box [| 1; 1 |] [ ([ (0, 4); (1, 4) ], 2); ([ (1, 1) ], 4) ] in
  let pts = ref [] in
  Box.iter_points b (fun p -> pts := (p.(0), p.(1)) :: !pts);
  let want = [ (1, 1); (1, 2); (1, 3); (1, 4); (5, 5); (5, 6); (5, 7); (5, 8) ] in
  Alcotest.(check (list (pair int int))) "tile structure" want
    (List.sort compare !pts)

let test_eval_form () =
  let b = mk_box [| 2; 3 |] [ ([ (0, 1) ], 5); ([ (1, 2) ], 3) ] in
  let f = Affine.make ~const:10 [| 100; 1 |] in
  let const, gens = Box.eval_form f b in
  Alcotest.(check int) "const at origin" (10 + 200 + 3) const;
  Alcotest.(check (list (pair int int))) "generators" [ (100, 5); (2, 3) ] gens

let test_eval_form_drops_zero () =
  let b = mk_box [| 0 |] [ ([ (0, 1) ], 5) ] in
  let f = Affine.make ~const:0 [| 0 |] in
  let _, gens = Box.eval_form f b in
  Alcotest.(check int) "no generators for zero coeff" 0 (List.length gens)

let prop_value_range =
  QCheck.Test.make ~name:"value_range bounds every generated value" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* const = int_range (-50) 50 in
         let* gens =
           list_size (int_range 0 4)
             (pair (int_range (-20) 20) (int_range 1 6))
         in
         return (const, gens)))
    (fun (const, gens) ->
      let gens = List.filter (fun (s, _) -> s <> 0) gens in
      let mn, mx = Box.value_range const gens in
      (* enumerate all combinations *)
      let rec enum acc = function
        | [] -> [ acc ]
        | (step, count) :: rest ->
            List.concat_map
              (fun t -> enum (acc + (step * t)) rest)
              (List.init count Fun.id)
      in
      List.for_all (fun v -> mn <= v && v <= mx) (enum const gens))

let prop_eval_form_matches_points =
  QCheck.Test.make ~name:"eval_form image = addresses of box points" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* c0 = int_range (-20) 20 in
         let* c1 = int_range (-10) 10 in
         let* c2 = int_range (-10) 10 in
         let* n1 = int_range 1 4 in
         let* n2 = int_range 1 4 in
         return (c0, c1, c2, n1, n2)))
    (fun (c0, c1, c2, n1, n2) ->
      let b = mk_box [| 0; 0 |] [ ([ (0, 1) ], n1); ([ (1, 1) ], n2) ] in
      let f = Affine.make ~const:c0 [| c1; c2 |] in
      let const, gens = Box.eval_form f b in
      let image_from_gens =
        let rec enum acc = function
          | [] -> [ acc ]
          | (step, count) :: rest ->
              List.concat_map (fun t -> enum (acc + (step * t)) rest)
                (List.init count Fun.id)
        in
        List.sort_uniq compare (enum const gens)
      in
      let image_from_points = ref [] in
      Box.iter_points b (fun p -> image_from_points := Affine.eval f p :: !image_from_points);
      List.sort_uniq compare !image_from_points = image_from_gens)

let suite =
  [
    Alcotest.test_case "points count" `Quick test_points_count;
    Alcotest.test_case "point_at / iter" `Quick test_point_at_and_iter;
    Alcotest.test_case "coupled targets" `Quick test_coupled_targets;
    Alcotest.test_case "eval_form" `Quick test_eval_form;
    Alcotest.test_case "zero coefficients dropped" `Quick test_eval_form_drops_zero;
    qcheck prop_value_range;
    qcheck prop_eval_form_matches_points;
  ]
