open Tiling_util

let qcheck = QCheck_alcotest.to_alcotest

let check_int = Alcotest.(check int)

let test_gcd_basic () =
  check_int "gcd 12 18" 6 (Intmath.gcd 12 18);
  check_int "gcd 0 0" 0 (Intmath.gcd 0 0);
  check_int "gcd 0 7" 7 (Intmath.gcd 0 7);
  check_int "gcd -12 18" 6 (Intmath.gcd (-12) 18);
  check_int "gcd 13 7" 1 (Intmath.gcd 13 7)

let test_lcm_basic () =
  check_int "lcm 4 6" 12 (Intmath.lcm 4 6);
  check_int "lcm 0 5" 0 (Intmath.lcm 0 5);
  check_int "lcm -4 6" 12 (Intmath.lcm (-4) 6)

let test_floor_ceil_div () =
  check_int "floor 7/2" 3 (Intmath.floor_div 7 2);
  check_int "floor -7/2" (-4) (Intmath.floor_div (-7) 2);
  check_int "floor 7/-2" (-4) (Intmath.floor_div 7 (-2));
  check_int "floor -7/-2" 3 (Intmath.floor_div (-7) (-2));
  check_int "ceil 7/2" 4 (Intmath.ceil_div 7 2);
  check_int "ceil -7/2" (-3) (Intmath.ceil_div (-7) 2);
  check_int "ceil 8/2" 4 (Intmath.ceil_div 8 2)

let test_pos_mod () =
  check_int "pos_mod 7 3" 1 (Intmath.pos_mod 7 3);
  check_int "pos_mod -7 3" 2 (Intmath.pos_mod (-7) 3);
  check_int "pos_mod 0 5" 0 (Intmath.pos_mod 0 5);
  check_int "pos_mod -3 3" 0 (Intmath.pos_mod (-3) 3)

let test_pow2 () =
  Alcotest.(check bool) "1024 pow2" true (Intmath.is_pow2 1024);
  Alcotest.(check bool) "1 pow2" true (Intmath.is_pow2 1);
  Alcotest.(check bool) "0 not" false (Intmath.is_pow2 0);
  Alcotest.(check bool) "-4 not" false (Intmath.is_pow2 (-4));
  Alcotest.(check bool) "96 not" false (Intmath.is_pow2 96);
  check_int "ceil_log2 1" 0 (Intmath.ceil_log2 1);
  check_int "ceil_log2 2" 1 (Intmath.ceil_log2 2);
  check_int "ceil_log2 3" 2 (Intmath.ceil_log2 3);
  check_int "ceil_log2 1024" 10 (Intmath.ceil_log2 1024);
  check_int "ceil_log2 1025" 11 (Intmath.ceil_log2 1025)

let test_pow () =
  check_int "2^10" 1024 (Intmath.pow 2 10);
  check_int "3^0" 1 (Intmath.pow 3 0);
  check_int "5^3" 125 (Intmath.pow 5 3);
  check_int "(-2)^3" (-8) (Intmath.pow (-2) 3)

let test_range_count () =
  check_int "1..10 step 1" 10 (Intmath.range_count ~lo:1 ~hi:10 ~step:1);
  check_int "1..10 step 3" 4 (Intmath.range_count ~lo:1 ~hi:10 ~step:3);
  check_int "empty" 0 (Intmath.range_count ~lo:5 ~hi:4 ~step:1);
  check_int "single" 1 (Intmath.range_count ~lo:5 ~hi:5 ~step:7)

let test_multiples_in () =
  check_int "mult of 3 in [1,10]" 3 (Intmath.multiples_in ~lo:1 ~hi:10 3);
  check_int "mult of 3 in [3,3]" 1 (Intmath.multiples_in ~lo:3 ~hi:3 3);
  check_int "mult of 3 in [-5,5]" 3 (Intmath.multiples_in ~lo:(-5) ~hi:5 3);
  check_int "empty" 0 (Intmath.multiples_in ~lo:4 ~hi:2 3);
  check_int "none" 0 (Intmath.multiples_in ~lo:7 ~hi:8 3)

let test_clamp () =
  check_int "below" 1 (Intmath.clamp ~lo:1 ~hi:10 (-5));
  check_int "above" 10 (Intmath.clamp ~lo:1 ~hi:10 25);
  check_int "inside" 4 (Intmath.clamp ~lo:1 ~hi:10 4)

let test_crt () =
  (match Intmath.crt (2, 3) (3, 5) with
  | Some (c, m) ->
      check_int "crt modulus" 15 m;
      check_int "crt value" 8 c
  | None -> Alcotest.fail "crt (2,3) (3,5) should be solvable");
  (match Intmath.crt (1, 4) (3, 6) with
  | Some (c, m) ->
      check_int "crt non-coprime modulus" 12 m;
      check_int "crt non-coprime value" 9 c
  | None -> Alcotest.fail "crt (1,4) (3,6) should be solvable");
  Alcotest.(check bool)
    "infeasible" true
    (Intmath.crt (0, 4) (1, 6) = None)

let prop_egcd =
  QCheck.Test.make ~name:"egcd bezout identity" ~count:500
    QCheck.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (a, b) ->
      let g, x, y = Intmath.egcd a b in
      g = Intmath.gcd a b && (a * x) + (b * y) = g && g >= 0)

let prop_floor_div =
  QCheck.Test.make ~name:"floor_div lower bound" ~count:500
    QCheck.(pair (int_range (-100000) 100000) (int_range 1 1000))
    (fun (a, b) ->
      let q = Intmath.floor_div a b in
      (q * b) <= a && ((q + 1) * b) > a)

let prop_pos_mod =
  QCheck.Test.make ~name:"pos_mod in range and congruent" ~count:500
    QCheck.(pair (int_range (-100000) 100000) (int_range 1 1000))
    (fun (a, m) ->
      let r = Intmath.pos_mod a m in
      r >= 0 && r < m && (a - r) mod m = 0)

let prop_crt =
  QCheck.Test.make ~name:"crt solution satisfies both congruences" ~count:500
    QCheck.(quad (int_range 0 50) (int_range 1 60) (int_range 0 50) (int_range 1 60))
    (fun (a, m, b, n) ->
      match Intmath.crt (a, m) (b, n) with
      | Some (c, l) ->
          l = Intmath.lcm m n
          && Intmath.pos_mod c m = Intmath.pos_mod a m
          && Intmath.pos_mod c n = Intmath.pos_mod b n
      | None -> (a - b) mod Intmath.gcd m n <> 0)

let prop_multiples =
  QCheck.Test.make ~name:"multiples_in counts exactly" ~count:300
    QCheck.(triple (int_range (-200) 200) (int_range (-200) 200) (int_range 1 40))
    (fun (lo, hi, m) ->
      let naive = ref 0 in
      for v = min lo hi to max lo hi do
        if v >= lo && v <= hi && v mod m = 0 then incr naive
      done;
      Intmath.multiples_in ~lo ~hi m = !naive)

let suite =
  [
    Alcotest.test_case "gcd" `Quick test_gcd_basic;
    Alcotest.test_case "lcm" `Quick test_lcm_basic;
    Alcotest.test_case "floor/ceil div" `Quick test_floor_ceil_div;
    Alcotest.test_case "pos_mod" `Quick test_pos_mod;
    Alcotest.test_case "powers of two" `Quick test_pow2;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "range_count" `Quick test_range_count;
    Alcotest.test_case "multiples_in" `Quick test_multiples_in;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "crt" `Quick test_crt;
    qcheck prop_egcd;
    qcheck prop_floor_div;
    qcheck prop_pos_mod;
    qcheck prop_crt;
    qcheck prop_multiples;
  ]
