open Tiling_ir

let qcheck = QCheck_alcotest.to_alcotest

let gen_affine depth =
  QCheck.Gen.(
    let* const = int_range (-100) 100 in
    let* coeffs = array_size (return depth) (int_range (-50) 50) in
    return (Affine.make ~const coeffs))

let gen_point depth = QCheck.Gen.(array_size (return depth) (int_range (-20) 20))

let test_const_var () =
  let c = Affine.const ~depth:3 7 in
  Alcotest.(check int) "const eval" 7 (Affine.eval c [| 1; 2; 3 |]);
  Alcotest.(check bool) "is_const" true (Affine.is_const c);
  let v = Affine.var ~depth:3 1 in
  Alcotest.(check int) "var eval" 2 (Affine.eval v [| 1; 2; 3 |]);
  Alcotest.(check bool) "var not const" false (Affine.is_const v)

let test_arith () =
  let f = Affine.make ~const:1 [| 2; 0; -1 |] in
  let g = Affine.make ~const:(-4) [| 1; 5; 0 |] in
  let p = [| 3; -2; 7 |] in
  Alcotest.(check int) "add" (Affine.eval f p + Affine.eval g p)
    (Affine.eval (Affine.add f g) p);
  Alcotest.(check int) "sub" (Affine.eval f p - Affine.eval g p)
    (Affine.eval (Affine.sub f g) p);
  Alcotest.(check int) "scale" (3 * Affine.eval f p)
    (Affine.eval (Affine.scale 3 f) p);
  Alcotest.(check int) "shift" (Affine.eval f p + 11)
    (Affine.eval (Affine.shift f 11) p)

let test_extend () =
  let f = Affine.make ~const:5 [| 2; 3 |] in
  (* remap old vars 0,1 to new vars 2,3 of a depth-4 nest *)
  let g = Affine.extend f ~new_depth:4 ~remap:(fun l -> l + 2) in
  Alcotest.(check int) "extended eval"
    (Affine.eval f [| 10; 20 |])
    (Affine.eval g [| 0; 0; 10; 20 |]);
  Alcotest.(check int) "old positions zero" 0 (Affine.coeff g 0)

let test_range_over () =
  let f = Affine.make ~const:0 [| 2; -3 |] in
  let mn, mx = Affine.range_over f ~lo:[| 0; 0 |] ~hi:[| 5; 4 |] in
  Alcotest.(check int) "min" (-12) mn;
  Alcotest.(check int) "max" 10 mx

let prop_range_bounds =
  QCheck.Test.make ~name:"range_over bounds every box point" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* f = gen_affine 3 in
         let* lo = array_size (return 3) (int_range (-10) 0) in
         let* span = array_size (return 3) (int_range 0 5) in
         let* frac = array_size (return 3) (int_range 0 100) in
         return (f, lo, span, frac)))
    (fun (f, lo, span, frac) ->
      let hi = Array.mapi (fun i l -> l + span.(i)) lo in
      let p = Array.mapi (fun i l -> l + (frac.(i) * span.(i) / 100)) lo in
      let mn, mx = Affine.range_over f ~lo ~hi in
      let v = Affine.eval f p in
      mn <= v && v <= mx)

let prop_add_commutes =
  QCheck.Test.make ~name:"add evaluates pointwise" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* f = gen_affine 4 in
         let* g = gen_affine 4 in
         let* p = gen_point 4 in
         return (f, g, p)))
    (fun (f, g, p) ->
      Affine.eval (Affine.add f g) p = Affine.eval f p + Affine.eval g p)

let suite =
  [
    Alcotest.test_case "const/var" `Quick test_const_var;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "extend" `Quick test_extend;
    Alcotest.test_case "range_over" `Quick test_range_over;
    qcheck prop_range_bounds;
    qcheck prop_add_commutes;
  ]
