open Tiling_ir
open Tiling_codegen

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let count_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub haystack i nn = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_c_structure () =
  let nest = Tiling_kernels.Kernels.mm 8 in
  let src = C_gen.emit_function nest in
  Alcotest.(check int) "three for loops" 3 (count_substring src "for (");
  Alcotest.(check bool) "balanced braces" true
    (count_substring src "{" = count_substring src "}");
  Alcotest.(check bool) "function signature" true (contains src "void mm(char *mem)");
  Alcotest.(check int) "three reads" 3 (count_substring src "acc += ");
  Alcotest.(check int) "one write" 1 (count_substring src " = acc;")

let test_c_tiled_structure () =
  let nest = Transform.tile (Tiling_kernels.Kernels.mm 10) [| 3; 10; 4 |] in
  let src = C_gen.emit_function nest in
  Alcotest.(check int) "six for loops" 6 (count_substring src "for (");
  (* tile element loops carry the min() bound, emitted as a ternary *)
  Alcotest.(check bool) "clamped upper bounds" true (contains src "?");
  Alcotest.(check bool) "balanced braces" true
    (count_substring src "{" = count_substring src "}")

let test_fortran_structure () =
  let nest = Transform.tile (Tiling_kernels.Kernels.t2d 10) [| 4; 5 |] in
  let src = Fortran_gen.emit_subroutine nest in
  Alcotest.(check int) "four do loops" 4 (count_substring src "do ");
  Alcotest.(check int) "four enddos" 4 (count_substring src "enddo");
  Alcotest.(check bool) "min bounds" true (contains src "min(");
  Alcotest.(check bool) "common block" true (contains src "common /mem/");
  Alcotest.(check bool) "declarations use layout" true
    (contains src "double precision a(10,10)")

let test_fortran_padding_gaps () =
  let nest = Tiling_kernels.Kernels.mm 8 in
  Transform.apply_padding nest
    { Transform.inter = [| 0; 32; 0 |]; intra = [| 0; 0; 2 |] };
  let src = Fortran_gen.emit_subroutine nest in
  Transform.clear_padding nest;
  Alcotest.(check bool) "gap filler present" true (contains src "integer*1 pad");
  Alcotest.(check bool) "padded leading dimension" true (contains src "c(10,8)")

let test_hash_matches_trace () =
  (* The OCaml-side hash must be consistent with the trace generator. *)
  let nest = Tiling_kernels.Kernels.mm 6 in
  let h1 = C_gen.access_stream_hash nest in
  let h2 = C_gen.access_stream_hash nest in
  Alcotest.(check int64) "deterministic" h1 h2;
  let tiled = Transform.tile nest [| 2; 3; 6 |] in
  Alcotest.(check bool) "tiling reorders the stream" true
    (C_gen.access_stream_hash tiled <> h1)

(* End-to-end: compile the emitted program with the system C compiler, run
   it, compare the printed hash with the analysis-side hash. *)
let compile_and_run nest =
  let dir = Filename.temp_file "tiling_cg" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c_file = Filename.concat dir "prog.c" in
  let exe = Filename.concat dir "prog" in
  let oc = open_out c_file in
  output_string oc (C_gen.emit_trace_program nest);
  close_out oc;
  let rc = Sys.command (Printf.sprintf "cc -O1 -o %s %s 2>/dev/null" exe c_file) in
  if rc <> 0 then None
  else begin
    let ic = Unix.open_process_in exe in
    let line = input_line ic in
    ignore (Unix.close_process_in ic);
    Some (Int64.of_string ("0u" ^ line))
  end

let test_compiled_c_matches ~kernel =
  match compile_and_run kernel with
  | None -> () (* no C compiler available: structural tests still ran *)
  | Some printed ->
      Alcotest.(check int64) "compiled C reproduces the access stream"
        (C_gen.access_stream_hash kernel)
        printed

let test_compiled_plain () = test_compiled_c_matches ~kernel:(Tiling_kernels.Kernels.mm 8)

let test_compiled_tiled () =
  test_compiled_c_matches
    ~kernel:(Transform.tile (Tiling_kernels.Kernels.mm 10) [| 3; 10; 4 |])

let test_compiled_ragged_tiles () =
  test_compiled_c_matches
    ~kernel:(Transform.tile (Tiling_kernels.Kernels.t2d 13) [| 5; 7 |])

let test_compiled_stencil () =
  test_compiled_c_matches ~kernel:(Tiling_kernels.Kernels.jacobi3d 7)

let test_compiled_padded () =
  let nest = Tiling_kernels.Kernels.mm 9 in
  Transform.apply_padding nest
    { Transform.inter = [| 8; 16; 0 |]; intra = [| 1; 0; 3 |] };
  Fun.protect
    ~finally:(fun () -> Transform.clear_padding nest)
    (fun () -> test_compiled_c_matches ~kernel:nest)

let suite =
  [
    Alcotest.test_case "C structure" `Quick test_c_structure;
    Alcotest.test_case "C tiled structure" `Quick test_c_tiled_structure;
    Alcotest.test_case "Fortran structure" `Quick test_fortran_structure;
    Alcotest.test_case "Fortran padding gaps" `Quick test_fortran_padding_gaps;
    Alcotest.test_case "hash determinism" `Quick test_hash_matches_trace;
    Alcotest.test_case "compiled C: plain" `Slow test_compiled_plain;
    Alcotest.test_case "compiled C: tiled" `Slow test_compiled_tiled;
    Alcotest.test_case "compiled C: ragged tiles" `Slow test_compiled_ragged_tiles;
    Alcotest.test_case "compiled C: stencil" `Slow test_compiled_stencil;
    Alcotest.test_case "compiled C: padded" `Slow test_compiled_padded;
  ]

let prop_compiled_random_tilings =
  QCheck.Test.make ~name:"compiled C matches analysis on random tilings"
    ~count:4
    QCheck.(pair (int_range 1 11) (int_range 1 11))
    (fun (t1, t2) ->
      let nest = Transform.tile (Tiling_kernels.Kernels.t2d 11) [| t1; t2 |] in
      match compile_and_run nest with
      | None -> true (* no C compiler: vacuous *)
      | Some printed -> printed = C_gen.access_stream_hash nest)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_compiled_random_tilings ]

let test_compiled_vpenta_with_coallocated_arrays () =
  (* VPENTA1 owns eight co-allocated planes, only seven of which the body
     touches; the emitted offsets must reflect the full placement. *)
  test_compiled_c_matches ~kernel:(Tiling_kernels.Kernels.vpenta1 32)

let suite =
  suite
  @ [
      Alcotest.test_case "compiled C: co-allocated arrays" `Slow
        test_compiled_vpenta_with_coallocated_arrays;
    ]
