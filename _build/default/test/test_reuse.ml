open Tiling_ir
open Tiling_reuse

let find_vector vectors ~delta ~leader =
  List.exists
    (fun (v : Vectors.t) -> v.Vectors.delta = delta && v.Vectors.leader = leader)
    vectors

let test_mm_vectors () =
  let nest = Tiling_kernels.Kernels.mm 16 in
  let vs = Vectors.of_nest nest ~line:32 in
  (* a(i,j) load (ref 0): self-temporal along k, group from the store. *)
  Alcotest.(check bool) "a load: self e_k" true
    (find_vector vs.(0) ~delta:[| 0; 0; 1 |] ~leader:None);
  Alcotest.(check bool) "a load: group from store" true
    (find_vector vs.(0) ~delta:[| 0; 0; 1 |] ~leader:(Some 3));
  (* b(i,k) (ref 1): self-temporal along j. *)
  Alcotest.(check bool) "b: self e_j" true
    (find_vector vs.(1) ~delta:[| 0; 1; 0 |] ~leader:None);
  (* c(k,j) (ref 2): self-spatial along k (unit stride, 8B elements). *)
  Alcotest.(check bool) "c: spatial e_k" true
    (List.exists
       (fun (v : Vectors.t) ->
         v.Vectors.delta = [| 0; 0; 1 |] && v.Vectors.spatial && v.Vectors.leader = None)
       vs.(2));
  (* store a (ref 3): zero-distance group reuse from the load. *)
  Alcotest.(check bool) "store: same-iteration group" true
    (find_vector vs.(3) ~delta:[| 0; 0; 0 |] ~leader:(Some 0))

let test_zero_delta_requires_earlier_leader () =
  let nest = Tiling_kernels.Kernels.mm 16 in
  let vs = Vectors.of_nest nest ~line:32 in
  (* The load (ref 0) cannot reuse from the store (ref 3) at distance 0. *)
  Alcotest.(check bool) "no zero-delta from later ref" false
    (find_vector vs.(0) ~delta:[| 0; 0; 0 |] ~leader:(Some 3))

let test_untiled_deltas_lex_positive () =
  List.iter
    (fun nest ->
      let vs = Vectors.of_nest nest ~line:32 in
      Array.iter
        (List.iter (fun (v : Vectors.t) ->
             let sign =
               let rec go l =
                 if l = Array.length v.Vectors.delta then 0
                 else if v.Vectors.delta.(l) <> 0 then compare v.Vectors.delta.(l) 0
                 else go (l + 1)
               in
               go 0
             in
             match (sign, v.Vectors.leader) with
             | 1, _ -> ()
             | 0, Some _ -> ()
             | _ -> Alcotest.fail "invalid vector on untiled nest"))
        vs)
    [ Tiling_kernels.Kernels.mm 12; Tiling_kernels.Kernels.t2d 12;
      Tiling_kernels.Kernels.jacobi3d 8 ]

let test_stencil_group_vectors () =
  let nest = Tiling_kernels.Kernels.jacobi3d 12 in
  let vs = Vectors.of_nest nest ~line:32 in
  (* b(i,j+1,k) (ref 3) reuses b(i,j-1,k) (ref 2) written two j earlier;
     b(i,j-1,k) reuses from b(i,j+1,k) two iterations ago. *)
  Alcotest.(check bool) "cross-stencil group reuse" true
    (find_vector vs.(2) ~delta:[| 0; 2; 0 |] ~leader:(Some 3));
  (* b(i+1,j,k) (ref 1) reuses b(i-1,j,k) (ref 0) at the same line only
     two i apart: temporal group at distance 2 of the innermost loop. *)
  Alcotest.(check bool) "i+1 from i-1" true
    (find_vector vs.(0) ~delta:[| 0; 0; 2 |] ~leader:(Some 1))

let test_transpose_spatial_seam () =
  (* T3DJIK's source b(j,i,k): a two-dimensional seam vector must exist
     (coarse dim moves one step, fine dim compensates). *)
  let nest = Tiling_kernels.Kernels.t3djik 14 in
  let vs = Vectors.of_nest nest ~line:32 in
  Alcotest.(check bool) "has a 2-component vector" true
    (List.exists
       (fun (v : Vectors.t) ->
         Array.length (Array.of_list (List.filter (fun x -> x <> 0) (Array.to_list v.Vectors.delta))) = 2)
       vs.(0))

let test_tiled_vectors_present () =
  let nest = Transform.tile (Tiling_kernels.Kernels.mm 16) [| 4; 4; 4 |] in
  let vs = Vectors.of_nest nest ~line:32 in
  (* within-tile self-temporal along the k element loop *)
  Alcotest.(check bool) "elem e_k" true
    (find_vector vs.(0) ~delta:[| 0; 0; 0; 0; 0; 1 |] ~leader:None);
  (* no vector should move only a control dim: sources would be invalid *)
  List.iter
    (fun (v : Vectors.t) ->
      let elems_zero =
        v.Vectors.delta.(3) = 0 && v.Vectors.delta.(4) = 0 && v.Vectors.delta.(5) = 0
      in
      let ctrls_zero =
        v.Vectors.delta.(0) = 0 && v.Vectors.delta.(1) = 0 && v.Vectors.delta.(2) = 0
      in
      if elems_zero && not ctrls_zero then
        Alcotest.fail "vector moves only control dims")
    vs.(0)

let test_dedup () =
  let nest = Tiling_kernels.Kernels.mm 16 in
  let vs = Vectors.of_nest nest ~line:32 in
  Array.iter
    (fun l ->
      let keys =
        List.map
          (fun (v : Vectors.t) -> (Array.to_list v.Vectors.delta, v.Vectors.spatial, v.Vectors.leader))
          l
      in
      Alcotest.(check int) "no duplicates" (List.length keys)
        (List.length (List.sort_uniq compare keys)))
    vs

let test_sorted_by_magnitude () =
  let nest = Tiling_kernels.Kernels.mm 16 in
  let vs = Vectors.of_nest nest ~line:32 in
  let magnitude (v : Vectors.t) =
    Array.fold_left (fun a k -> a + abs k) 0 v.Vectors.delta
  in
  Array.iter
    (fun l ->
      let mags = List.map magnitude l in
      Alcotest.(check (list int)) "non-decreasing" (List.sort compare mags) mags)
    vs

let suite =
  [
    Alcotest.test_case "MM vectors" `Quick test_mm_vectors;
    Alcotest.test_case "zero delta needs earlier leader" `Quick
      test_zero_delta_requires_earlier_leader;
    Alcotest.test_case "untiled deltas lex-positive" `Quick
      test_untiled_deltas_lex_positive;
    Alcotest.test_case "stencil group vectors" `Quick test_stencil_group_vectors;
    Alcotest.test_case "transpose seam vector" `Quick test_transpose_spatial_seam;
    Alcotest.test_case "tiled vectors" `Quick test_tiled_vectors_present;
    Alcotest.test_case "dedup" `Quick test_dedup;
    Alcotest.test_case "sorted nearest-first" `Quick test_sorted_by_magnitude;
  ]

let test_exact_group_deltas_multi_dim () =
  (* Uniformly generated 3D references offset in every dimension: the exact
     per-dimension solve must produce the full 3-component delta. *)
  let a = Array_decl.create "a" [| 12; 12; 12 |] in
  let nest =
    Dsl.(
      nest ~name:"g3"
        ~loops:[ ("x", 2, 11); ("y", 2, 11); ("z", 2, 11) ]
        ~body:
          [
            load a [ v "z" -! i 1; v "y" +! i 1; v "x" -! i 1 ];
            store a [ v "z"; v "y"; v "x" ]
          ]
        ())
  in
  let vs = Vectors.of_nest nest ~line:32 in
  (* element (z-1, y+1, x-1) of the load at (x,y,z) was stored at
     (x-1, y+1, z-1): delta (1, -1, 1). *)
  Alcotest.(check bool) "three-component group delta" true
    (find_vector vs.(0) ~delta:[| 1; -1; 1 |] ~leader:(Some 1))

let test_exact_group_requires_same_array () =
  let a = Array_decl.create "a" [| 8; 8 |] in
  let b = Array_decl.create "b" [| 8; 8 |] in
  Array_decl.place [ a; b ];
  let nest =
    Dsl.(
      nest ~name:"g2"
        ~loops:[ ("x", 1, 8); ("y", 1, 8) ]
        ~body:[ load a [ v "x"; v "y" ]; store b [ v "x"; v "y" ] ]
        ())
  in
  let vs = Vectors.of_nest nest ~line:32 in
  (* a and b are distinct arrays 512B apart: no zero-delta temporal group *)
  Alcotest.(check bool) "no temporal group across arrays" false
    (List.exists
       (fun (v : Vectors.t) ->
         v.Vectors.leader <> None && not v.Vectors.spatial
         && Array.for_all (fun k -> k = 0) v.Vectors.delta)
       vs.(1))

let test_infeasible_group_gap () =
  (* b(2x) vs b(2x+1): the gap is odd, the stride even — no temporal
     delta exists; only spatial (same-line) candidates may appear. *)
  let b = Array_decl.create "b" [| 40 |] in
  let nest =
    Dsl.(
      nest ~name:"g1"
        ~loops:[ ("x", 1, 16) ]
        ~body:[ load b [ 2 *! v "x" ]; load b [ (2 *! v "x") +! i 1 ] ]
        ())
  in
  let vs = Vectors.of_nest nest ~line:32 in
  List.iter
    (fun (v : Vectors.t) ->
      if v.Vectors.leader = Some 1 && not v.Vectors.spatial then
        Alcotest.fail "claimed impossible temporal reuse")
    vs.(0)

let suite =
  suite
  @ [
      Alcotest.test_case "exact multi-dim group deltas" `Quick
        test_exact_group_deltas_multi_dim;
      Alcotest.test_case "groups need same array for delta solve" `Quick
        test_exact_group_requires_same_array;
      Alcotest.test_case "infeasible gaps rejected" `Quick
        test_infeasible_group_gap;
    ]
