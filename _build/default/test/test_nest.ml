open Tiling_ir

let qcheck = QCheck_alcotest.to_alcotest

let small_nest ?(n = 6) () = Tiling_kernels.Kernels.mm n

let test_depth_and_names () =
  let nest = small_nest () in
  Alcotest.(check int) "depth" 3 (Nest.depth nest);
  Alcotest.(check (array string)) "names" [| "i"; "j"; "k" |] (Nest.var_names nest)

let test_trip_count () =
  let nest = small_nest ~n:6 () in
  Alcotest.(check int) "untiled" 216 (Nest.trip_count nest);
  let tiled = Transform.tile nest [| 4; 6; 5 |] in
  Alcotest.(check int) "tiled preserves trips" 216 (Nest.trip_count tiled)

let test_iter_matches_trip () =
  List.iter
    (fun nest ->
      let count = ref 0 in
      Nest.iter_points nest (fun _ -> incr count);
      Alcotest.(check int) "iterated points = trip_count" (Nest.trip_count nest)
        !count)
    [
      small_nest ();
      Transform.tile (small_nest ()) [| 2; 3; 4 |];
      Transform.tile (small_nest ()) [| 6; 1; 5 |];
      Tiling_kernels.Kernels.jacobi3d 8;
    ]

let test_iter_is_lexicographic () =
  let nest = Transform.tile (small_nest ()) [| 4; 2; 3 |] in
  let prev = ref None in
  Nest.iter_points nest (fun p ->
      let p = Array.copy p in
      (match !prev with
      | Some q ->
          if Nest.lex_compare q p >= 0 then
            Alcotest.fail "points not in strictly increasing lex order"
      | None -> ());
      prev := Some p)

let test_mem_point () =
  let nest = small_nest ~n:6 () in
  Alcotest.(check bool) "inside" true (Nest.mem_point nest [| 1; 6; 3 |]);
  Alcotest.(check bool) "below" false (Nest.mem_point nest [| 0; 1; 1 |]);
  Alcotest.(check bool) "above" false (Nest.mem_point nest [| 1; 7; 1 |]);
  Alcotest.(check bool) "wrong arity" false (Nest.mem_point nest [| 1; 1 |]);
  let tiled = Transform.tile nest [| 4; 6; 5 |] in
  (* ii=5 tile holds i in [5,6]; i=4 belongs to tile ii=1 *)
  Alcotest.(check bool) "tiled inside" true
    (Nest.mem_point tiled [| 5; 1; 1; 5; 3; 2 |]);
  Alcotest.(check bool) "elem outside its tile" false
    (Nest.mem_point tiled [| 5; 1; 1; 4; 3; 2 |]);
  Alcotest.(check bool) "ctrl off lattice" false
    (Nest.mem_point tiled [| 2; 1; 1; 2; 3; 2 |])

let test_bounds_at_tiled () =
  let nest = Transform.tile (small_nest ~n:6 ()) [| 4; 6; 5 |] in
  (* element loop of the partial i-tile: [5, 6] *)
  let lo, hi, step = Nest.bounds_at nest [| 5; 1; 1; 0; 0; 0 |] 3 in
  Alcotest.(check (triple int int int)) "partial tile bounds" (5, 6, 1) (lo, hi, step);
  let lo, hi, _ = Nest.bounds_at nest [| 1; 1; 1; 0; 0; 0 |] 3 in
  Alcotest.(check (pair int int)) "full tile bounds" (1, 4) (lo, hi)

let test_every_iterated_point_is_member () =
  let nest = Transform.tile (small_nest ~n:7 ()) [| 3; 7; 2 |] in
  Nest.iter_points nest (fun p ->
      if not (Nest.mem_point nest p) then
        Alcotest.failf "iterated point not a member: %s"
          (String.concat "," (List.map string_of_int (Array.to_list p))))

let test_random_point_membership () =
  let nest = Transform.tile (small_nest ~n:9 ()) [| 4; 2; 9 |] in
  let rng = Tiling_util.Prng.create ~seed:5 in
  for _ = 1 to 500 do
    let p = Nest.random_point nest rng in
    if not (Nest.mem_point nest p) then Alcotest.fail "random point outside space"
  done

let test_random_point_uniform () =
  (* Under tiling with a partial tile, the original value must stay
     uniform: check the marginal of the innermost original loop. *)
  let n = 10 in
  let nest = Transform.tile (small_nest ~n ()) [| 3; 10; 10 |] in
  let rng = Tiling_util.Prng.create ~seed:17 in
  let counts = Array.make (n + 1) 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let p = Nest.random_point nest rng in
    counts.(p.(3)) <- counts.(p.(3)) + 1
  done;
  let expect = float_of_int draws /. float_of_int n in
  for v = 1 to n do
    let dev = abs_float (float_of_int counts.(v) -. expect) /. expect in
    if dev > 0.12 then
      Alcotest.failf "value %d frequency off by %.0f%%" v (100. *. dev)
  done

let test_address_form () =
  let nest = small_nest ~n:6 () in
  (* c(k,j): base_c + 8*(k-1) + 48*(j-1) *)
  let c_ref = nest.Nest.refs.(2) in
  let f = Nest.address_form nest c_ref in
  let base = c_ref.Nest.array.Array_decl.base in
  Alcotest.(check int) "c(1,1)" base (Affine.eval f [| 9; 1; 1 |]);
  Alcotest.(check int) "c(2,1)" (base + 8) (Affine.eval f [| 9; 1; 2 |]);
  Alcotest.(check int) "c(1,2)" (base + 48) (Affine.eval f [| 9; 2; 1 |])

let test_lex_compare () =
  Alcotest.(check int) "equal" 0 (Nest.lex_compare [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "less" true (Nest.lex_compare [| 1; 2 |] [| 1; 3 |] < 0);
  Alcotest.(check bool) "greater" true (Nest.lex_compare [| 2; 0 |] [| 1; 9 |] > 0)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_pp_smoke () =
  let s = Fmt.str "%a" Nest.pp (Transform.tile (small_nest ()) [| 2; 3; 6 |]) in
  Alcotest.(check bool) "mentions min bound" true (contains s "min(");
  Alcotest.(check bool) "mentions loads" true (contains s "load")

let prop_trip_count_tiled =
  QCheck.Test.make ~name:"tiling preserves trip count" ~count:100
    QCheck.(triple (int_range 1 9) (int_range 1 9) (int_range 1 9))
    (fun (t1, t2, t3) ->
      let nest = small_nest ~n:9 () in
      let tiled = Transform.tile nest [| t1; t2; t3 |] in
      Nest.trip_count tiled = Nest.trip_count nest)

let suite =
  [
    Alcotest.test_case "depth and names" `Quick test_depth_and_names;
    Alcotest.test_case "trip count" `Quick test_trip_count;
    Alcotest.test_case "iterated points = trip count" `Quick test_iter_matches_trip;
    Alcotest.test_case "iteration order is lexicographic" `Quick
      test_iter_is_lexicographic;
    Alcotest.test_case "mem_point" `Quick test_mem_point;
    Alcotest.test_case "bounds_at on tiles" `Quick test_bounds_at_tiled;
    Alcotest.test_case "iterated points are members" `Quick
      test_every_iterated_point_is_member;
    Alcotest.test_case "random points are members" `Quick
      test_random_point_membership;
    Alcotest.test_case "random points uniform marginal" `Quick
      test_random_point_uniform;
    Alcotest.test_case "address form" `Quick test_address_form;
    Alcotest.test_case "lex compare" `Quick test_lex_compare;
    Alcotest.test_case "pretty printer" `Quick test_pp_smoke;
    qcheck prop_trip_count_tiled;
  ]
