open Tiling_ir

let test_strides_column_major () =
  let a = Array_decl.create "a" [| 10; 20; 30 |] in
  Alcotest.(check (array int)) "strides" [| 8; 80; 1600 |] (Array_decl.strides a);
  Alcotest.(check int) "footprint" (10 * 20 * 30 * 8) (Array_decl.footprint a)

let test_elem_size () =
  let a = Array_decl.create ~elem_size:4 "a" [| 8 |] in
  Alcotest.(check (array int)) "strides" [| 4 |] (Array_decl.strides a);
  Alcotest.(check int) "footprint" 32 (Array_decl.footprint a)

let test_place () =
  let a = Array_decl.create "a" [| 10 |] and b = Array_decl.create "b" [| 5 |] in
  Array_decl.place [ a; b ];
  Alcotest.(check int) "a base" 0 a.Array_decl.base;
  Alcotest.(check int) "b base" 80 b.Array_decl.base;
  Array_decl.place ~gap:(fun _ -> 16) [ a; b ];
  Alcotest.(check int) "a base with gap" 16 a.Array_decl.base;
  Alcotest.(check int) "b base with gap" (16 + 80 + 16) b.Array_decl.base

let test_padding_layout () =
  let a = Array_decl.create "a" [| 10; 10 |] in
  Array_decl.set_layout a [| 12; 10 |];
  Alcotest.(check (array int)) "padded strides" [| 8; 96 |] (Array_decl.strides a);
  Alcotest.(check int) "padded footprint" (12 * 10 * 8) (Array_decl.footprint a);
  Array_decl.reset_padding a;
  Alcotest.(check (array int)) "reset strides" [| 8; 80 |] (Array_decl.strides a)

let test_validation () =
  (try
     ignore (Array_decl.create "bad" [||]);
     Alcotest.fail "empty extents accepted"
   with Assert_failure _ -> ());
  try
    ignore (Array_decl.create "bad" [| 0 |]);
    Alcotest.fail "zero extent accepted"
  with Assert_failure _ -> ()

let test_layout_must_cover () =
  let a = Array_decl.create "a" [| 10 |] in
  (try
     Array_decl.set_layout a [| 5 |];
     Alcotest.fail "layout below extent accepted"
   with Assert_failure _ -> ())

let suite =
  [
    Alcotest.test_case "column-major strides" `Quick test_strides_column_major;
    Alcotest.test_case "element size" `Quick test_elem_size;
    Alcotest.test_case "place" `Quick test_place;
    Alcotest.test_case "padding layout" `Quick test_padding_layout;
    Alcotest.test_case "creation validation" `Quick test_validation;
    Alcotest.test_case "layout >= extents" `Quick test_layout_must_cover;
  ]
