open Tiling_cache

let test_config () =
  let c = Config.make ~size:8192 ~line:32 () in
  Alcotest.(check int) "sets" 256 c.Config.sets;
  let c2 = Config.make ~size:8192 ~line:32 ~assoc:4 () in
  Alcotest.(check int) "4-way sets" 64 c2.Config.sets;
  Alcotest.(check int) "line_of" 3 (Config.line_of c 127);
  Alcotest.(check int) "set_of wraps" 0 (Config.set_of c 8192);
  Alcotest.(check int) "negative addresses floor" (-1) (Config.line_of c (-1))

let test_config_validation () =
  let expect_invalid f = try ignore (f ()); Alcotest.fail "accepted" with Invalid_argument _ -> () in
  expect_invalid (fun () -> Config.make ~size:1000 ~line:32 ());
  expect_invalid (fun () -> Config.make ~size:1024 ~line:24 ());
  expect_invalid (fun () -> Config.make ~size:32 ~line:64 ());
  expect_invalid (fun () -> Config.make ~size:1024 ~line:32 ~assoc:0 ())

let test_direct_mapped_conflict () =
  let c = Config.make ~size:128 ~line:32 () in
  (* 4 sets; addresses 0 and 128 share set 0. *)
  let s = Sim.create c in
  Sim.access s ~ref_id:0 ~addr:0;
  Sim.access s ~ref_id:0 ~addr:128;
  Sim.access s ~ref_id:0 ~addr:0;
  let t = Sim.total s in
  Alcotest.(check int) "accesses" 3 t.Sim.accesses;
  Alcotest.(check int) "misses" 3 t.Sim.misses;
  Alcotest.(check int) "compulsory" 2 t.Sim.compulsory;
  Alcotest.(check int) "replacement" 1 (Sim.replacement t)

let test_hit_within_line () =
  let c = Config.make ~size:128 ~line:32 () in
  let s = Sim.create c in
  Sim.access s ~ref_id:0 ~addr:0;
  Sim.access s ~ref_id:0 ~addr:31;
  Sim.access s ~ref_id:0 ~addr:8;
  let t = Sim.total s in
  Alcotest.(check int) "one miss" 1 t.Sim.misses

let test_two_way_lru () =
  let c = Config.make ~size:128 ~line:32 ~assoc:2 () in
  (* 2 sets; lines 0, 2, 4 (addresses 0, 128, 256) all map to set 0. *)
  let s = Sim.create c in
  Sim.access s ~ref_id:0 ~addr:0;
  Sim.access s ~ref_id:0 ~addr:128;
  Sim.access s ~ref_id:0 ~addr:0;
  (* hit: both fit in 2 ways *)
  Alcotest.(check int) "hit with 2 ways" 2 (Sim.total s).Sim.misses;
  Sim.access s ~ref_id:0 ~addr:256;
  (* evicts LRU = line 128 *)
  Sim.access s ~ref_id:0 ~addr:128;
  (* miss again *)
  Alcotest.(check int) "LRU eviction order" 4 (Sim.total s).Sim.misses;
  Sim.access s ~ref_id:0 ~addr:0;
  (* 0 was MRU before 256: still resident? 0,256 resident, so hit *)
  Alcotest.(check int) "MRU protected" 5 (Sim.total s).Sim.misses

let test_per_ref_counters () =
  let c = Config.make ~size:128 ~line:32 () in
  let s = Sim.create ~num_refs:1 c in
  Sim.access s ~ref_id:0 ~addr:0;
  Sim.access s ~ref_id:5 ~addr:0;
  (* forces counter growth; hit *)
  let per = Sim.per_ref s in
  Alcotest.(check bool) "grown" true (Array.length per >= 6);
  Alcotest.(check int) "ref 0 misses" 1 per.(0).Sim.misses;
  Alcotest.(check int) "ref 5 hits" 0 per.(5).Sim.misses;
  Alcotest.(check int) "ref 5 accesses" 1 per.(5).Sim.accesses

let test_reset () =
  let c = Config.make ~size:128 ~line:32 () in
  let s = Sim.create c in
  Sim.access s ~ref_id:0 ~addr:0;
  Sim.reset s;
  Alcotest.(check int) "zeroed" 0 (Sim.total s).Sim.accesses;
  Sim.access s ~ref_id:0 ~addr:0;
  Alcotest.(check int) "cold again" 1 (Sim.total s).Sim.compulsory

let test_ratios () =
  let counts = { Sim.accesses = 200; misses = 50; compulsory = 10 } in
  Alcotest.(check (float 1e-9)) "miss ratio" 0.25 (Sim.miss_ratio counts);
  Alcotest.(check (float 1e-9)) "replacement ratio" 0.2
    (Sim.replacement_ratio counts);
  let zero = { Sim.accesses = 0; misses = 0; compulsory = 0 } in
  Alcotest.(check (float 1e-9)) "empty" 0. (Sim.miss_ratio zero)

let test_lines_touched () =
  let c = Config.make ~size:128 ~line:32 () in
  let s = Sim.create c in
  List.iter (fun a -> Sim.access s ~ref_id:0 ~addr:a) [ 0; 32; 64; 0; 33 ];
  Alcotest.(check int) "distinct lines" 3 (Sim.lines_touched s)

let test_fully_associative () =
  let c = Config.make ~size:128 ~line:32 ~assoc:4 () in
  Alcotest.(check int) "one set" 1 c.Config.sets;
  let s = Sim.create c in
  (* 4 lines fit; a 5th evicts the least recently used (line 0). *)
  List.iter (fun a -> Sim.access s ~ref_id:0 ~addr:a) [ 0; 32; 64; 96; 128; 0 ];
  Alcotest.(check int) "misses" 6 (Sim.total s).Sim.misses

let suite =
  [
    Alcotest.test_case "config derivation" `Quick test_config;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "direct-mapped conflict" `Quick test_direct_mapped_conflict;
    Alcotest.test_case "hit within line" `Quick test_hit_within_line;
    Alcotest.test_case "2-way LRU" `Quick test_two_way_lru;
    Alcotest.test_case "per-ref counters" `Quick test_per_ref_counters;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "ratios" `Quick test_ratios;
    Alcotest.test_case "lines touched" `Quick test_lines_touched;
    Alcotest.test_case "fully associative LRU" `Quick test_fully_associative;
  ]

let test_writebacks () =
  let c = Config.make ~size:128 ~line:32 () in
  let s = Sim.create c in
  (* Clean eviction: no writeback. *)
  Sim.access s ~ref_id:0 ~addr:0;
  Sim.access s ~ref_id:0 ~addr:128;
  Alcotest.(check int) "clean eviction" 0 (Sim.writebacks s);
  (* Dirty line evicted: one writeback. *)
  Sim.access ~write:true s ~ref_id:0 ~addr:128;
  Sim.access s ~ref_id:0 ~addr:0;
  Alcotest.(check int) "dirty eviction" 1 (Sim.writebacks s);
  (* Dirty bit survives an intervening read hit. *)
  Sim.access ~write:true s ~ref_id:0 ~addr:0;
  Sim.access s ~ref_id:0 ~addr:4;
  Sim.access s ~ref_id:0 ~addr:128;
  Alcotest.(check int) "dirty preserved across hits" 2 (Sim.writebacks s);
  Sim.reset s;
  Alcotest.(check int) "reset clears writebacks" 0 (Sim.writebacks s)

let test_report_has_writebacks () =
  let nest = Tiling_kernels.Kernels.t2d 16 in
  let r = Tiling_trace.Run.simulate nest (Config.make ~size:256 ~line:32 ()) in
  (* the transpose stores a whole array: many dirty evictions *)
  Alcotest.(check bool) "writebacks observed" true (r.Tiling_trace.Run.writebacks > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "writebacks" `Quick test_writebacks;
      Alcotest.test_case "report writebacks" `Quick test_report_has_writebacks;
    ]
