(* Differential fuzzing of the CME solver: random affine kernels, random
   tilings, random cache geometries — aggregate miss counts must track the
   trace-driven simulator closely.  This is the strongest evidence that the
   analytical model is faithful far beyond the hand-written kernels.

   The generator stays within the CME framework's domain: references to the
   same array are *uniformly generated* (identical linear parts, differing
   only in constant offsets).  Group reuse between non-uniform references
   (e.g. an in-place transpose reading b(i,j) and writing b(j,i)) is outside
   the model both in the paper and here. *)

open Tiling_ir

let gen_kernel =
  QCheck.Gen.(
    let* depth = int_range 2 3 in
    let* extents = int_range 8 14 in
    let* narrays = int_range 1 3 in
    let* nrefs = int_range 1 4 in
    let* perm_seeds = list_size (return narrays) (int_range 0 1000) in
    let* refs =
      list_size (return nrefs)
        (let* arr_i = int_range 0 (narrays - 1) in
         let* offsets = list_size (return depth) (int_range (-1) 1) in
         let* is_store = bool in
         return (arr_i, offsets, is_store))
    in
    return (depth, extents, perm_seeds, refs))

let build_kernel (depth, extents, perm_seeds, refs) =
  let narrays = List.length perm_seeds in
  let arrays =
    List.init narrays (fun i ->
        Array_decl.create
          (Printf.sprintf "arr%d" i)
          (Array.make depth (extents + 2)))
  in
  Array_decl.place arrays;
  let var_names = Array.init depth (fun l -> Printf.sprintf "v%d" l) in
  let loops =
    Array.to_list (Array.map (fun v -> (v, 2, extents)) var_names)
  in
  (* One subscript permutation per array: uniformly generated references. *)
  let orders =
    List.map
      (fun seed ->
        let order = Array.init depth Fun.id in
        Tiling_util.Prng.shuffle (Tiling_util.Prng.create ~seed) order;
        order)
      perm_seeds
  in
  let body =
    List.map
      (fun (arr_i, offsets, is_store) ->
        let a = List.nth arrays arr_i in
        let order = List.nth orders arr_i in
        let subs =
          List.mapi
            (fun d off -> Dsl.(v var_names.(order.(d)) +! i off))
            offsets
        in
        if is_store then Dsl.store a subs else Dsl.load a subs)
      refs
  in
  Dsl.nest ~name:"fuzz" ~loops ~body ()

let print_instance ((depth, extents, perm_seeds, refs), size, assoc, tile_seed) =
  Printf.sprintf "depth=%d extents=%d perms=[%s] refs=[%s] size=%d assoc=%d tile_seed=%d"
    depth extents
    (String.concat ";" (List.map string_of_int perm_seeds))
    (String.concat ";"
       (List.map
          (fun (a, offs, st) ->
            Printf.sprintf "(a%d,[%s],%b)" a
              (String.concat ";" (List.map string_of_int offs))
              st)
          refs))
    size assoc tile_seed

let prop_random_kernels =
  QCheck.Test.make
    ~name:"random kernels: CME miss ratio within 2pp; compulsory over-approximated"
    ~count:40
    (QCheck.make ~print:print_instance
       QCheck.Gen.(
         let* k = gen_kernel in
         let* size_log = int_range 8 10 in
         let* assoc = oneofl [ 1; 1; 2 ] in
         let* tile_seed = int_range 0 9999 in
         return (k, 1 lsl size_log, assoc, tile_seed)))
    (fun (k, size, assoc, tile_seed) ->
      let nest = build_kernel k in
      let cache = Tiling_cache.Config.make ~size ~line:32 ~assoc () in
      let nest =
        (* half the cases: additionally tile with random sizes *)
        if tile_seed land 1 = 0 then nest
        else begin
          let rng = Tiling_util.Prng.create ~seed:tile_seed in
          let spans = Transform.tile_spans nest in
          Transform.tile nest
            (Array.map (fun s -> 1 + Tiling_util.Prng.int rng s) spans)
        end
      in
      let sim = Tiling_trace.Run.simulate nest cache in
      let est = Tiling_cme.Estimator.exact (Tiling_cme.Engine.create nest cache) in
      let sim_miss = Tiling_cache.Sim.miss_ratio sim.Tiling_trace.Run.total in
      let cme_miss = est.Tiling_cme.Estimator.miss_ratio.Tiling_util.Stats.center in
      let sim_repl = Tiling_cache.Sim.replacement_ratio sim.Tiling_trace.Run.total in
      let cme_repl =
        est.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center
      in
      (* Hit/miss decisions must track the simulator tightly.  The
         compulsory/replacement attribution relies on the reuse-vector set
         finding *some* earlier same-line access: when it does not, a miss
         is (over-)classified as compulsory — so CME compulsory can only
         exceed the simulator's first-touch count, never undershoot it, and
         the replacement split may sag slightly on adversarial kernels. *)
      if abs_float (sim_miss -. cme_miss) > 0.02 then
        QCheck.Test.fail_reportf "miss sim %.4f vs cme %.4f" sim_miss cme_miss
      else if est.Tiling_cme.Estimator.compulsory < sim.Tiling_trace.Run.total.Tiling_cache.Sim.compulsory
      then
        QCheck.Test.fail_reportf "CME compulsory %d under simulator's %d"
          est.Tiling_cme.Estimator.compulsory
          sim.Tiling_trace.Run.total.Tiling_cache.Sim.compulsory
      else if cme_repl -. sim_repl > 0.02 || sim_repl -. cme_repl > 0.05 then
        QCheck.Test.fail_reportf "repl sim %.4f vs cme %.4f" sim_repl cme_repl
      else true)

let suite = [ QCheck_alcotest.to_alcotest prop_random_kernels ]
