(* Tuning a 2D matrix transposition and watching the GA converge, then
   validating the CME prediction against the trace-driven simulator on a
   size small enough to simulate exactly.

   Run with:  dune exec examples/transpose_tuning.exe *)

let () =
  (* Part 1: watch the GA generations on T2D n=2000 (table 2's kernel). *)
  let nest = Tiling_kernels.Kernels.t2d 2000 in
  let cache = Tiling_cache.Config.dm8k in
  Fmt.pr "=== GA progress on T2D n=2000, %a ===@." Tiling_cache.Config.pp cache;
  let sample = Tiling_core.Sample.create ~seed:7 nest in
  let encoding =
    Tiling_ga.Encoding.make (Tiling_ir.Transform.tile_spans nest)
  in
  let objective tiles = Tiling_core.Tiler.objective_on sample nest cache tiles in
  let rng = Tiling_util.Prng.create ~seed:7 in
  let result =
    Tiling_ga.Engine.run
      ~on_generation:(fun s ->
        Fmt.pr "  generation %2d: best %3.0f misses, population average %6.1f@."
          s.Tiling_ga.Engine.generation s.Tiling_ga.Engine.best
          s.Tiling_ga.Engine.average)
      ~encoding ~objective ~rng ()
  in
  let tiles = Tiling_ga.Encoding.decode encoding result.Tiling_ga.Engine.best_genes in
  Fmt.pr "  best tiles [%a], %s after %d generations@.@."
    Fmt.(array ~sep:(any ",") int)
    tiles
    (if result.Tiling_ga.Engine.converged then "converged" else "stopped")
    result.Tiling_ga.Engine.generations;

  (* Part 2: validate the model against ground truth on T2D n=256 with a
     1 KB cache (same ratio of problem to cache, small enough to simulate
     every access). *)
  Fmt.pr "=== CME vs simulator, T2D n=256, 1KB DM ===@.";
  let nest = Tiling_kernels.Kernels.t2d 256 in
  let cache = Tiling_cache.Config.make ~size:1024 ~line:32 () in
  let check label nest =
    let sim = Tiling_trace.Run.simulate nest cache in
    let engine = Tiling_cme.Engine.create nest cache in
    let est = Tiling_cme.Estimator.exact engine in
    Fmt.pr "  %-12s simulator: %5.2f%% replacement | CME: %5.2f%%@." label
      (100. *. Tiling_cache.Sim.replacement_ratio sim.Tiling_trace.Run.total)
      (100. *. est.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center)
  in
  check "untiled" nest;
  List.iter
    (fun tiles ->
      check
        (Printf.sprintf "tiles %s"
           (String.concat "x" (List.map string_of_int (Array.to_list tiles))))
        (Tiling_ir.Transform.tile nest tiles))
    [ [| 32; 4 |]; [| 64; 8 |]; [| 17; 9 |] ]
