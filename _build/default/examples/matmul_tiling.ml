(* Matrix-multiply tile selection across cache geometries, with every
   baseline selector evaluated on the same objective — the scenario the
   paper's introduction motivates (dense linear algebra dominated by
   capacity misses).

   Run with:  dune exec examples/matmul_tiling.exe *)

let pct x = 100. *. x

let () =
  let n = 500 in
  let nest = Tiling_kernels.Kernels.mm n in
  let caches =
    [
      ("8KB DM", Tiling_cache.Config.dm8k);
      ("32KB DM", Tiling_cache.Config.dm32k);
      ("16KB 2-way", Tiling_cache.Config.make ~size:16384 ~line:32 ~assoc:2 ());
    ]
  in
  List.iter
    (fun (label, cache) ->
      Fmt.pr "=== MM n=%d, %s (%a) ===@." n label Tiling_cache.Config.pp cache;
      let sample = Tiling_core.Sample.create ~seed:42 nest in
      let eval tiles = Tiling_core.Tiler.objective_on sample nest cache tiles in
      let accesses = float_of_int (4 * Tiling_core.Sample.size sample) in
      let show label tiles obj =
        Fmt.pr "  %-18s [%-14s] repl %5.2f%%@." label
          (String.concat ","
             (Array.to_list (Array.map string_of_int tiles)))
          (pct (obj /. accesses))
      in
      let untiled = Tiling_ir.Transform.tile_spans nest in
      show "untiled" untiled (eval untiled);
      let opts = { Tiling_core.Tiler.default_opts with seed = 42 } in
      let ga = Tiling_core.Tiler.optimize ~opts nest cache in
      show "GA+CME (paper)" ga.Tiling_core.Tiler.tiles
        ga.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective;
      let lrw = Tiling_baselines.Analytic.lrw nest cache in
      show "LRW square" lrw (eval lrw);
      let cm = Tiling_baselines.Analytic.coleman_mckinley nest cache in
      show "Coleman-McKinley" cm (eval cm);
      let sm = Tiling_baselines.Analytic.sarkar_megiddo nest cache in
      show "Sarkar-Megiddo" sm (eval sm);
      let rnd = Tiling_baselines.Search.random ~evals:450 ~seed:42 sample nest cache in
      show "random search" rnd.Tiling_baselines.Search.tiles
        rnd.Tiling_baselines.Search.objective;
      let hc = Tiling_baselines.Search.hill_climb ~evals:450 ~seed:42 sample nest cache in
      show "hill climbing" hc.Tiling_baselines.Search.tiles
        hc.Tiling_baselines.Search.objective)
    caches
