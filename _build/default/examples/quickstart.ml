(* Quickstart: tile the matrix-multiply kernel for an 8 KB direct-mapped
   cache and report the predicted miss ratios before and after.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the loop nest.  This is figure 1 of the paper: a 500x500
     double-precision matrix multiply, arrays placed consecutively as a
     Fortran compiler would. *)
  let n = 500 in
  let open Tiling_ir in
  let a = Array_decl.create "a" [| n; n |] in
  let b = Array_decl.create "b" [| n; n |] in
  let c = Array_decl.create "c" [| n; n |] in
  Array_decl.place [ a; b; c ];
  let nest =
    Dsl.(
      nest ~name:"matmul"
        ~loops:[ ("i", 1, n); ("j", 1, n); ("k", 1, n) ]
        ~body:
          [
            load a [ v "i"; v "j" ];
            load b [ v "i"; v "k" ];
            load c [ v "k"; v "j" ];
            store a [ v "i"; v "j" ];
          ]
        ())
  in
  Fmt.pr "Loop nest:@.%a@." Nest.pp nest;

  (* 2. Pick a cache and search tile sizes. *)
  let cache = Tiling_cache.Config.dm8k in
  let outcome = Tiling_core.Tiler.optimize nest cache in

  (* 3. Report. *)
  let pct r = 100. *. r.Tiling_util.Stats.center in
  let before = outcome.Tiling_core.Tiler.before in
  let after = outcome.Tiling_core.Tiler.after in
  Fmt.pr "Cache: %a@." Tiling_cache.Config.pp cache;
  Fmt.pr "Best tiles found: [%a]@."
    Fmt.(array ~sep:(any ", ") int)
    outcome.Tiling_core.Tiler.tiles;
  Fmt.pr "Miss ratio:        %.1f%% -> %.1f%%@."
    (pct before.Tiling_cme.Estimator.miss_ratio)
    (pct after.Tiling_cme.Estimator.miss_ratio);
  Fmt.pr "Replacement ratio: %.1f%% -> %.1f%%@."
    (pct before.Tiling_cme.Estimator.replacement_ratio)
    (pct after.Tiling_cme.Estimator.replacement_ratio);
  Fmt.pr "GA: %d generations, %d evaluations%s@."
    outcome.Tiling_core.Tiler.ga.Tiling_ga.Engine.generations
    outcome.Tiling_core.Tiler.ga.Tiling_ga.Engine.evaluations
    (if outcome.Tiling_core.Tiler.ga.Tiling_ga.Engine.converged then
       " (converged)"
     else "");

  (* 4. The tiled nest itself, ready to be emitted. *)
  let tiled = Transform.tile nest outcome.Tiling_core.Tiler.tiles in
  Fmt.pr "@.Tiled nest:@.%a" Nest.pp tiled
