(* Visualising the objective the GA searches: the replacement-miss count of
   MM as a function of the two inner tile sizes (the outer loop untiled), as
   an ASCII heat map.  The ruggedness on display — conflict-miss cliffs cut
   across the smooth capacity valley — is why closed-form selectors
   misjudge tiles and why the paper reaches for a genetic algorithm.

   Run with:  dune exec examples/landscape.exe *)

let () =
  let n = 500 in
  let nest = Tiling_kernels.Kernels.mm n in
  let cache = Tiling_cache.Config.dm8k in
  let sample = Tiling_core.Sample.create ~seed:7 nest in
  let accesses = float_of_int (4 * Tiling_core.Sample.size sample) in
  let steps = 24 in
  let axis = Array.init steps (fun i -> 1 + (i * (128 - 1) / (steps - 1))) in
  Fmt.pr
    "MM n=%d, %a: replacement ratio for tiles [%d, Tj, Tk], Tj/Tk in [1,128]@.@."
    n Tiling_cache.Config.pp cache n;
  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  let grid =
    Array.map
      (fun tj ->
        Array.map
          (fun tk ->
            Tiling_core.Tiler.objective_on sample nest cache [| n; tj; tk |]
            /. accesses)
          axis)
      axis
  in
  let vmax = Array.fold_left (fun m row -> Array.fold_left max m row) 0. grid in
  Fmt.pr "        Tk ->  %s@."
    (String.concat ""
       (Array.to_list (Array.map (fun t -> if t mod 32 < 6 then "|" else " ") axis)));
  Array.iteri
    (fun j row ->
      let cells =
        String.concat ""
          (Array.to_list
             (Array.map
                (fun v ->
                  let idx =
                    int_of_float (v /. (vmax +. 1e-9) *. 9.99)
                  in
                  String.make 1 shades.(idx))
                row))
      in
      Fmt.pr "Tj=%4d        %s@." axis.(j) cells)
    grid;
  Fmt.pr "@.(darker = more replacement misses; max %.1f%%)@." (100. *. vmax);

  (* Where do the selectors land on this surface? *)
  let show label tiles =
    let v =
      Tiling_core.Tiler.objective_on sample nest cache tiles /. accesses
    in
    Fmt.pr "%-20s [%s] -> %.2f%%@." label
      (String.concat "," (Array.to_list (Array.map string_of_int tiles)))
      (100. *. v)
  in
  show "untiled" [| n; n; n |];
  show "LRW" (Tiling_baselines.Analytic.lrw nest cache);
  show "Coleman-McKinley" (Tiling_baselines.Analytic.coleman_mckinley nest cache);
  show "Sarkar-Megiddo" (Tiling_baselines.Analytic.sarkar_megiddo nest cache);
  let ga = Tiling_core.Tiler.optimize ~opts:{ Tiling_core.Tiler.default_opts with seed = 7 } nest cache in
  show "GA+CME" ga.Tiling_core.Tiler.tiles
