(* Removing conflict misses that tiling cannot touch: the VPENTA story
   (table 3 of the paper).  All eight VPENTA planes are 128 x 128 doubles,
   so consecutive arrays sit exactly a multiple of the cache size apart and
   every a(i,j) .. y(i,j) access of an iteration lands in the same set.
   Tiling does not change addresses, so only padding can fix this.

   Run with:  dune exec examples/padding_demo.exe *)

let pct r = 100. *. r.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center

let () =
  let cache = Tiling_cache.Config.dm8k in
  List.iter
    (fun name ->
      let spec = Tiling_kernels.Kernels.find name in
      let nest = spec.build 128 in
      Fmt.pr "=== %s (n=128) on %a ===@." name Tiling_cache.Config.pp cache;

      (* Tiling alone: stuck. *)
      let t = Tiling_core.Tiler.optimize nest cache in
      Fmt.pr "  tiling alone:    %5.1f%% -> %5.1f%% replacement@."
        (pct t.Tiling_core.Tiler.before)
        (pct t.Tiling_core.Tiler.after);

      (* Padding, then padding + tiling: the paper's sequential pipeline. *)
      let c = Tiling_core.Optimizer.pad_then_tile nest cache in
      Fmt.pr "  padding:         %5.1f%% -> %5.1f%% replacement@."
        (pct c.Tiling_core.Optimizer.original)
        (pct c.Tiling_core.Optimizer.padded);
      Fmt.pr "  padding + tiling:         -> %5.1f%% replacement@."
        (pct c.Tiling_core.Optimizer.padded_tiled);
      Fmt.pr "  chosen padding: intra=[%a] elements, inter=[%a] bytes@."
        Fmt.(array ~sep:(any ",") int)
        c.Tiling_core.Optimizer.padding.Tiling_ir.Transform.intra
        Fmt.(array ~sep:(any ",") int)
        c.Tiling_core.Optimizer.padding.Tiling_ir.Transform.inter;
      Fmt.pr "  tiles after padding: [%a]@.@."
        Fmt.(array ~sep:(any ",") int)
        c.Tiling_core.Optimizer.tiles)
    [ "VPENTA1"; "VPENTA2" ]
