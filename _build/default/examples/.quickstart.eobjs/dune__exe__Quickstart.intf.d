examples/quickstart.mli:
