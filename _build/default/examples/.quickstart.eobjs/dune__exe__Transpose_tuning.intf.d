examples/transpose_tuning.mli:
