examples/quickstart.ml: Array_decl Dsl Fmt Nest Tiling_cache Tiling_cme Tiling_core Tiling_ga Tiling_ir Tiling_util Transform
