examples/padding_demo.mli:
