examples/landscape.ml: Array Fmt String Tiling_baselines Tiling_cache Tiling_core Tiling_kernels
