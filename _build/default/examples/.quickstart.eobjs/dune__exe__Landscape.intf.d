examples/landscape.mli:
