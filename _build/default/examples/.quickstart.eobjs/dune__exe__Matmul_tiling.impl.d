examples/matmul_tiling.ml: Array Fmt List String Tiling_baselines Tiling_cache Tiling_core Tiling_ga Tiling_ir Tiling_kernels
