examples/padding_demo.ml: Fmt List Tiling_cache Tiling_cme Tiling_core Tiling_ir Tiling_kernels Tiling_util
