examples/matmul_tiling.mli:
