examples/transpose_tuning.ml: Array Fmt List Printf String Tiling_cache Tiling_cme Tiling_core Tiling_ga Tiling_ir Tiling_kernels Tiling_trace Tiling_util
