(* tiler — command-line driver for the CME+GA loop-tiling library.

   Subcommands:
     list        kernels and their paper sizes
     show        pretty-print a kernel (optionally tiled)
     simulate    trace-driven cache simulation (ground truth)
     analyze     CME miss-ratio estimate (sampled or exact, --per-ref)
     equations   CME census (regions / equation counts)
     tile        GA tile-size search
     pad         GA padding search
     pad-tile    padding then tiling (table 3 pipeline)
     joint       one GA over padding and tiles (the paper's future work)
     order       loop order searched together with tile sizes
     codegen     emit the (tiled) nest as C or Fortran
     baselines   compare search and analytic baselines on one kernel
     oracle      exhaustive CME-vs-simulator check over the kernel suite
     serve       run the tiling daemon (docs/SERVER.md)
     request     one request against a daemon (--trace, --progress)
     metrics     one-shot OpenMetrics scrape of a daemon
     top         live terminal view of a daemon

   The search/analysis subcommands take observability flags (see
   docs/OBSERVABILITY.md): --log-level for leveled stderr diagnostics,
   --json for a machine-readable result on stdout (human text moves to
   stderr), --metrics for a final counter snapshot, and --trace-out FILE
   for a Chrome trace_event file of the run's spans. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common arguments                                                     *)

let kernel_arg =
  let doc = "Kernel name (see $(b,tiler list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let size_arg =
  let doc = "Problem size N (defaults to the kernel's first paper size)." in
  Arg.(value & opt (some int) None & info [ "n"; "size" ] ~docv:"N" ~doc)

let cache_size_arg =
  let doc = "Cache size in bytes (default 8192)." in
  Arg.(value & opt int 8192 & info [ "cache" ] ~docv:"BYTES" ~doc)

let line_arg =
  let doc = "Line size in bytes (default 32)." in
  Arg.(value & opt int 32 & info [ "line" ] ~docv:"BYTES" ~doc)

let assoc_arg =
  let doc = "Associativity (default 1 = direct-mapped)." in
  Arg.(value & opt int 1 & info [ "assoc" ] ~docv:"WAYS" ~doc)

let seed_arg =
  let doc = "Random seed for sampling and the GA." in
  Arg.(value & opt int 20020815 & info [ "seed" ] ~docv:"SEED" ~doc)

let tiles_arg =
  let doc = "Tile sizes, comma separated (e.g. 32,8,64)." in
  Arg.(value & opt (some (list int)) None & info [ "tiles" ] ~docv:"T1,..,Tk" ~doc)

let exact_arg =
  let doc = "Visit every iteration point instead of sampling (slow)." in
  Arg.(value & flag & info [ "exact" ] ~doc)

(* Search flags shared by every GA subcommand. *)

let domains_arg =
  let doc =
    "Evaluate each GA generation in parallel over this many OCaml domains \
     (the result is identical for any value)."
  in
  Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"N" ~doc)

let backend_arg =
  let backend_conv =
    let parse s =
      match Tiling_search.Backend.of_string s with
      | Ok b -> Ok b
      | Error m -> Error (`Msg m)
    in
    let print ppf (b : Tiling_search.Backend.t) =
      Fmt.string ppf b.Tiling_search.Backend.name
    in
    Arg.conv (parse, print)
  in
  let doc =
    Printf.sprintf
      "Candidate cost backend; $(docv) is one of %s (see docs/SEARCH.md)."
      (String.concat ", " Tiling_search.Backend.names)
  in
  Arg.(
    value
    & opt backend_conv Tiling_search.Backend.default
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

(* ------------------------------------------------------------------ *)
(* Observability flags                                                  *)

type obs = {
  log_level : Logs.level option;
  json : bool;
  metrics : bool;
  trace_out : string option;
}

let obs_term =
  let level_conv =
    let parse s =
      match Tiling_obs.Logging.level_of_string s with
      | Ok l -> Ok l
      | Error m -> Error (`Msg m)
    in
    let print ppf l = Fmt.string ppf (Logs.level_to_string l) in
    Arg.conv (parse, print)
  in
  let log_level =
    let doc =
      Printf.sprintf "Diagnostic logging to stderr; $(docv) is one of %s."
        (String.concat ", " Tiling_obs.Logging.level_names)
    in
    Arg.(value & opt level_conv None & info [ "log-level" ] ~docv:"LEVEL" ~doc)
  in
  let json =
    let doc =
      "Print the result as one JSON object on stdout; the human-readable \
       text moves to stderr."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let metrics =
    let doc =
      "Record library metrics (solver classifications, GA evaluations, memo \
       hit rates, ...) and dump a final snapshot — into the JSON object \
       under $(b,metrics) with $(b,--json), as pretty JSON on stdout \
       otherwise."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let trace_out =
    let doc =
      "Record timed spans and write a Chrome trace_event file to $(docv) \
       (open in chrome://tracing or Perfetto)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let make log_level json metrics trace_out = { log_level; json; metrics; trace_out } in
  Term.(const make $ log_level $ json $ metrics $ trace_out)

let cache_json (c : Tiling_cache.Config.t) =
  Tiling_obs.Json.Obj
    [
      ("size", Tiling_obs.Json.Int c.Tiling_cache.Config.size);
      ("line", Tiling_obs.Json.Int c.Tiling_cache.Config.line);
      ("assoc", Tiling_obs.Json.Int c.Tiling_cache.Config.assoc);
      ("sets", Tiling_obs.Json.Int c.Tiling_cache.Config.sets);
    ]

(* Run one instrumented command body.  [f] computes the result under a root
   span and returns the human-readable printer plus the command-specific
   JSON fields; this wrapper routes them according to the flags.  With no
   observability flags everything below is inert and [f]'s printer writes
   to stdout exactly as it always did. *)
let obs_run obs ~command ~kernel ~n ~cache f =
  Tiling_obs.Logging.setup obs.log_level;
  if obs.metrics then Tiling_obs.Metrics.set_enabled true;
  if obs.trace_out <> None then Tiling_obs.Span.set_enabled true;
  let human, fields = Tiling_obs.Span.with_ ("cli." ^ command) f in
  Option.iter
    (fun file ->
      try Tiling_obs.Span.write_chrome file
      with Sys_error m -> Fmt.epr "tiler: cannot write trace: %s@." m)
    obs.trace_out;
  if obs.json then begin
    human Fmt.stderr;
    let obj =
      [
        ("command", Tiling_obs.Json.String command);
        ("kernel", Tiling_obs.Json.String kernel);
        ("n", Tiling_obs.Json.Int n);
        ("cache", cache_json cache);
      ]
      @ fields
      @
      if obs.metrics then [ ("metrics", Tiling_obs.Metrics.snapshot ()) ] else []
    in
    print_endline (Tiling_obs.Json.to_string (Tiling_obs.Json.Obj obj))
  end
  else begin
    human Fmt.stdout;
    if obs.metrics then
      Fmt.pr "metrics: %a@." Tiling_obs.Json.pp (Tiling_obs.Metrics.snapshot ())
  end

let build_kernel name size =
  match Tiling_kernels.Kernels.find name with
  | spec ->
      let n = match size with Some n -> n | None -> List.hd spec.sizes in
      Ok (spec, n, spec.build n)
  | exception Not_found ->
      Error (`Msg (Printf.sprintf "unknown kernel %S (try `tiler list')" name))

let build_cache size line assoc =
  match Tiling_cache.Config.make ~size ~line ~assoc () with
  | c -> Ok c
  | exception Invalid_argument m -> Error (`Msg m)

let with_setup name size csize line assoc f =
  match build_kernel name size with
  | Error (`Msg m) -> `Error (false, m)
  | Ok (spec, n, nest) -> (
      match build_cache csize line assoc with
      | Error (`Msg m) -> `Error (false, m)
      | Ok cache ->
          f spec n nest cache;
          `Ok ())

let apply_tiles nest = function
  | None -> nest
  | Some tiles -> Tiling_ir.Transform.tile nest (Array.of_list tiles)

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)

let list_cmd =
  let run () =
    Fmt.pr "%-9s %-5s %-22s %s@." "KERNEL" "LOOPS" "SIZES" "DESCRIPTION";
    List.iter
      (fun (s : Tiling_kernels.Kernels.spec) ->
        Fmt.pr "%-9s %-5d %-22s %s@." s.name s.loops
          (String.concat "," (List.map string_of_int s.sizes))
          s.description)
      (Tiling_kernels.Kernels.all @ Tiling_kernels.Kernels.extras)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper's kernels")
    Term.(const run $ const ())

let show_cmd =
  let run name size tiles =
    match build_kernel name size with
    | Error (`Msg m) -> `Error (false, m)
    | Ok (_, _, nest) ->
        Fmt.pr "%a" Tiling_ir.Nest.pp (apply_tiles nest tiles);
        `Ok ()
  in
  Cmd.v (Cmd.info "show" ~doc:"Pretty-print a kernel as pseudo-Fortran")
    Term.(ret (const run $ kernel_arg $ size_arg $ tiles_arg))

let simulate_cmd =
  let run name size csize line assoc tiles =
    with_setup name size csize line assoc (fun _ n nest cache ->
        let nest = apply_tiles nest tiles in
        let report = Tiling_trace.Run.simulate nest cache in
        Fmt.pr "%s n=%d on %a:@.%a@." name n Tiling_cache.Config.pp cache
          Tiling_trace.Run.pp_report report)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Replay the kernel's trace through the cache simulator")
    Term.(
      ret
        (const run $ kernel_arg $ size_arg $ cache_size_arg $ line_arg
       $ assoc_arg $ tiles_arg))

let analyze_cmd =
  let per_ref_arg =
    let doc = "Also print per-reference miss ratios." in
    Arg.(value & flag & info [ "per-ref" ] ~doc)
  in
  let run name size csize line assoc tiles exact seed per_ref obs =
    with_setup name size csize line assoc (fun _ n nest cache ->
        obs_run obs ~command:"analyze" ~kernel:name ~n ~cache (fun () ->
            let nest = apply_tiles nest tiles in
            let engine = Tiling_cme.Engine.create nest cache in
            let report =
              if exact then Tiling_cme.Estimator.exact engine
              else Tiling_cme.Estimator.sample ~seed engine
            in
            let amat =
              Tiling_cache.Amat.amat
                ~miss_ratio:
                  report.Tiling_cme.Estimator.miss_ratio.Tiling_util.Stats.center
                ()
            in
            let human ppf =
              Fmt.pf ppf "%s n=%d on %a:@.%a@." name n Tiling_cache.Config.pp
                cache Tiling_cme.Estimator.pp report;
              Fmt.pf ppf
                "estimated AMAT: %.1f cycles (1-cycle hits, 100-cycle memory)@."
                amat;
              if per_ref then
                Fmt.pf ppf "%a" (Tiling_cme.Estimator.pp_per_ref nest) report
            in
            ( human,
              [
                ("result", Tiling_cme.Estimator.to_json report);
                ("amat_cycles", Tiling_obs.Json.Float amat);
              ] )))
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Estimate miss ratios with the CME solver")
    Term.(
      ret
        (const run $ kernel_arg $ size_arg $ cache_size_arg $ line_arg
       $ assoc_arg $ tiles_arg $ exact_arg $ seed_arg $ per_ref_arg $ obs_term))

let equations_cmd =
  let run name size csize line assoc tiles =
    with_setup name size csize line assoc (fun _ n nest cache ->
        let nest = apply_tiles nest tiles in
        let s = Tiling_cme.Equations.summarize nest ~line:cache.Tiling_cache.Config.line in
        Fmt.pr "%s n=%d: %a@." name n Tiling_cme.Equations.pp s)
  in
  Cmd.v (Cmd.info "equations" ~doc:"Count CME convex regions and equations")
    Term.(
      ret
        (const run $ kernel_arg $ size_arg $ cache_size_arg $ line_arg
       $ assoc_arg $ tiles_arg))

let tile_cmd =
  let run name size csize line assoc seed domains backend obs =
    with_setup name size csize line assoc (fun _ n nest cache ->
        obs_run obs ~command:"tile" ~kernel:name ~n ~cache (fun () ->
            let opts =
              { Tiling_core.Tiler.default_opts with seed; domains; backend }
            in
            let o = Tiling_core.Tiler.optimize ~opts nest cache in
            let human ppf =
              Fmt.pf ppf "%s n=%d on %a:@.%a@." name n Tiling_cache.Config.pp
                cache Tiling_core.Tiler.pp_outcome o
            in
            (human, [ ("result", Tiling_core.Tiler.to_json o) ])))
  in
  Cmd.v (Cmd.info "tile" ~doc:"Search near-optimal tile sizes with the GA")
    Term.(
      ret
        (const run $ kernel_arg $ size_arg $ cache_size_arg $ line_arg
       $ assoc_arg $ seed_arg $ domains_arg $ backend_arg $ obs_term))

let pad_cmd =
  let run name size csize line assoc seed domains backend obs =
    with_setup name size csize line assoc (fun _ n nest cache ->
        obs_run obs ~command:"pad" ~kernel:name ~n ~cache (fun () ->
            let opts =
              { Tiling_core.Padder.default_opts with seed; domains; backend }
            in
            let o = Tiling_core.Padder.optimize ~opts nest cache in
            let human ppf =
              Fmt.pf ppf "%s n=%d on %a:@.%a@." name n Tiling_cache.Config.pp
                cache Tiling_core.Padder.pp_outcome o
            in
            (human, [ ("result", Tiling_core.Padder.to_json o) ])))
  in
  Cmd.v (Cmd.info "pad" ~doc:"Search near-optimal padding with the GA")
    Term.(
      ret
        (const run $ kernel_arg $ size_arg $ cache_size_arg $ line_arg
       $ assoc_arg $ seed_arg $ domains_arg $ backend_arg $ obs_term))

let pad_tile_cmd =
  let run name size csize line assoc seed domains backend obs =
    with_setup name size csize line assoc (fun _ n nest cache ->
        obs_run obs ~command:"pad-tile" ~kernel:name ~n ~cache (fun () ->
            let topts =
              { Tiling_core.Tiler.default_opts with seed; domains; backend }
            in
            let popts =
              { Tiling_core.Padder.default_opts with seed; domains; backend }
            in
            let o = Tiling_core.Optimizer.pad_then_tile ~topts ~popts nest cache in
            let human ppf =
              Fmt.pf ppf "%s n=%d on %a:@.%a@." name n Tiling_cache.Config.pp
                cache Tiling_core.Optimizer.pp_combined o
            in
            (human, [ ("result", Tiling_core.Optimizer.combined_to_json o) ])))
  in
  Cmd.v
    (Cmd.info "pad-tile" ~doc:"Padding then tiling (the table 3 pipeline)")
    Term.(
      ret
        (const run $ kernel_arg $ size_arg $ cache_size_arg $ line_arg
       $ assoc_arg $ seed_arg $ domains_arg $ backend_arg $ obs_term))

let trace_cmd =
  let limit_arg =
    let doc = "Maximum number of events to print (default 1000; 0 = all)." in
    Arg.(value & opt int 1000 & info [ "limit" ] ~docv:"N" ~doc)
  in
  let run name size tiles limit =
    match build_kernel name size with
    | Error (`Msg m) -> `Error (false, m)
    | Ok (_, _, nest) ->
        let nest = apply_tiles nest tiles in
        let printed = ref 0 in
        (try
           Tiling_trace.Gen.iter nest (fun ev ->
               if limit > 0 && !printed >= limit then raise Exit;
               incr printed;
               (* dineroIV-style label: r/w address (hex) *)
               Printf.printf "%c 0x%x\n"
                 (match ev.Tiling_trace.Gen.access with
                 | Tiling_ir.Nest.Read -> 'r'
                 | Tiling_ir.Nest.Write -> 'w')
                 ev.Tiling_trace.Gen.addr)
         with Exit -> ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Dump the (tiled) nest's address trace (dinero-style r/w lines)")
    Term.(ret (const run $ kernel_arg $ size_arg $ tiles_arg $ limit_arg))

let codegen_cmd =
  let lang_arg =
    let doc = "Output language: c or fortran." in
    Cmdliner.Arg.(value & opt string "c" & info [ "lang" ] ~docv:"LANG" ~doc)
  in
  let run name size tiles lang =
    match build_kernel name size with
    | Error (`Msg m) -> `Error (false, m)
    | Ok (_, _, nest) -> (
        let nest = apply_tiles nest tiles in
        match String.lowercase_ascii lang with
        | "c" ->
            print_string (Tiling_codegen.C_gen.emit_function nest);
            `Ok ()
        | "fortran" | "f" | "f77" ->
            print_string (Tiling_codegen.Fortran_gen.emit_subroutine nest);
            `Ok ()
        | other -> `Error (false, Printf.sprintf "unknown language %S" other))
  in
  Cmd.v
    (Cmd.info "codegen" ~doc:"Emit the (tiled) nest as C or Fortran source")
    Term.(ret (const run $ kernel_arg $ size_arg $ tiles_arg $ lang_arg))

let order_cmd =
  let run name size csize line assoc seed domains backend obs =
    with_setup name size csize line assoc (fun _ n nest cache ->
        obs_run obs ~command:"order" ~kernel:name ~n ~cache (fun () ->
            let opts =
              { Tiling_core.Tiler.default_opts with seed; domains; backend }
            in
            let o = Tiling_core.Tiler.optimize_with_order ~opts nest cache in
            let human ppf =
              Fmt.pf ppf "%s n=%d on %a:@.%a@." name n Tiling_cache.Config.pp
                cache Tiling_core.Tiler.pp_order_outcome o
            in
            (human, [ ("result", Tiling_core.Tiler.order_to_json o) ])))
  in
  Cmd.v
    (Cmd.info "order"
       ~doc:"Search loop order and tile sizes together (extension)")
    Term.(
      ret
        (const run $ kernel_arg $ size_arg $ cache_size_arg $ line_arg
       $ assoc_arg $ seed_arg $ domains_arg $ backend_arg $ obs_term))

let joint_cmd =
  let run name size csize line assoc seed domains backend obs =
    with_setup name size csize line assoc (fun _ n nest cache ->
        obs_run obs ~command:"joint" ~kernel:name ~n ~cache (fun () ->
            let topts =
              { Tiling_core.Tiler.default_opts with seed; domains; backend }
            in
            let popts = { Tiling_core.Padder.default_opts with seed } in
            let o = Tiling_core.Optimizer.pad_and_tile ~topts ~popts nest cache in
            let human ppf =
              Fmt.pf ppf "%s n=%d on %a:@.%a@." name n Tiling_cache.Config.pp
                cache Tiling_core.Optimizer.pp_joint o
            in
            (human, [ ("result", Tiling_core.Optimizer.joint_to_json o) ])))
  in
  Cmd.v
    (Cmd.info "joint"
       ~doc:"Search padding and tiling in a single GA (the paper's future work)")
    Term.(
      ret
        (const run $ kernel_arg $ size_arg $ cache_size_arg $ line_arg
       $ assoc_arg $ seed_arg $ domains_arg $ backend_arg $ obs_term))

(* The oracle/fuzz CME side: exact point classification or the closed-form
   aggregator.  Named --backend to mirror the search commands, but the
   choices differ (the comparison needs a census, so cme-sample/sim do not
   apply). *)
let oracle_mode_arg =
  let mode_conv =
    Arg.enum [ ("exact", `Exact); ("symbolic", `Closed_form) ]
  in
  let doc =
    "CME side of the comparison: $(b,exact) classifies every point, \
     $(b,symbolic) aggregates through the closed-form solver (refusals \
     count as inconclusive)."
  in
  Arg.(value & opt mode_conv `Exact & info [ "backend" ] ~docv:"BACKEND" ~doc)

let fuzz_cmd =
  let trials_arg =
    let doc = "Number of random trials to run." in
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let time_budget_arg =
    let doc =
      "Stop drawing new trials after $(docv) seconds of wall clock (the \
       trial in flight finishes; shrinking is not budgeted)."
    in
    Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"SEC" ~doc)
  in
  let spec_arg =
    let doc =
      "Comma-separated generator overrides, e.g. \
       $(b,depth=2,extent=8,line=32).  Knobs: depth, extent, arrays, refs, \
       offset, coeff, step, sets, assoc, line, tri (see docs/FUZZING.md)."
    in
    Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"KNOBS" ~doc)
  in
  let run trials time_budget spec seed domains mode obs =
    let knobs =
      match spec with
      | None -> Ok Tiling_fuzz.Driver.default_knobs
      | Some s -> Tiling_fuzz.Driver.knobs_of_string s
    in
    match knobs with
    | Error m -> `Error (false, m)
    | Ok knobs ->
        Tiling_obs.Logging.setup obs.log_level;
        if obs.metrics then Tiling_obs.Metrics.set_enabled true;
        if obs.trace_out <> None then Tiling_obs.Span.set_enabled true;
        let o =
          Tiling_fuzz.Driver.run ~knobs ?time_budget ~domains ~mode ~trials
            ~seed ()
        in
        Option.iter
          (fun file ->
            try Tiling_obs.Span.write_chrome file
            with Sys_error m -> Fmt.epr "tiler: cannot write trace: %s@." m)
          obs.trace_out;
        let human ppf =
          Fmt.pf ppf
            "fuzz: %d trials (%.1f/s), %d agree, %d inconclusive \
             (fallback-masked), %d fallback trials, %d accesses compared@."
            o.Tiling_fuzz.Driver.trials_run
            (float_of_int o.Tiling_fuzz.Driver.trials_run
            /. max 1e-9 o.Tiling_fuzz.Driver.wall_s)
            o.Tiling_fuzz.Driver.agreed o.Tiling_fuzz.Driver.inconclusive
            o.Tiling_fuzz.Driver.fallback_trials
            o.Tiling_fuzz.Driver.accesses;
          List.iter
            (fun (m : Tiling_fuzz.Driver.mismatch) ->
              Fmt.pf ppf "MISMATCH (trial %d, %d shrink checks)@."
                m.Tiling_fuzz.Driver.trial m.Tiling_fuzz.Driver.shrink_checks;
              Fmt.pf ppf "  raw:    %a@." Tiling_fuzz.Case.pp
                m.Tiling_fuzz.Driver.raw;
              Fmt.pf ppf "  shrunk: %a@." Tiling_fuzz.Case.pp
                m.Tiling_fuzz.Driver.shrunk;
              Fmt.pf ppf "  %a@." Tiling_fuzz.Oracle.pp_result
                m.Tiling_fuzz.Driver.result)
            o.Tiling_fuzz.Driver.mismatches;
          if o.Tiling_fuzz.Driver.mismatches = [] then
            Fmt.pf ppf "no mismatches: solver and simulator agree@."
        in
        let mismatch_json (m : Tiling_fuzz.Driver.mismatch) =
          Tiling_obs.Json.Obj
            [
              ("trial", Tiling_obs.Json.Int m.Tiling_fuzz.Driver.trial);
              ( "raw",
                Tiling_obs.Json.String
                  (Tiling_fuzz.Case.to_string m.Tiling_fuzz.Driver.raw) );
              ( "shrunk",
                Tiling_obs.Json.String
                  (Tiling_fuzz.Case.to_string m.Tiling_fuzz.Driver.shrunk) );
              ( "shrink_checks",
                Tiling_obs.Json.Int m.Tiling_fuzz.Driver.shrink_checks );
            ]
        in
        if obs.json then begin
          human Fmt.stderr;
          let obj =
            [
              ("command", Tiling_obs.Json.String "fuzz");
              ("seed", Tiling_obs.Json.Int seed);
              ("trials", Tiling_obs.Json.Int o.Tiling_fuzz.Driver.trials_run);
              ("agreed", Tiling_obs.Json.Int o.Tiling_fuzz.Driver.agreed);
              ( "inconclusive",
                Tiling_obs.Json.Int o.Tiling_fuzz.Driver.inconclusive );
              ( "fallback_trials",
                Tiling_obs.Json.Int o.Tiling_fuzz.Driver.fallback_trials );
              ("accesses", Tiling_obs.Json.Int o.Tiling_fuzz.Driver.accesses);
              ("wall_s", Tiling_obs.Json.Float o.Tiling_fuzz.Driver.wall_s);
              ( "mismatches",
                Tiling_obs.Json.List
                  (List.map mismatch_json o.Tiling_fuzz.Driver.mismatches) );
            ]
            @
            if obs.metrics then
              [ ("metrics", Tiling_obs.Metrics.snapshot ()) ]
            else []
          in
          print_endline (Tiling_obs.Json.to_string (Tiling_obs.Json.Obj obj))
        end
        else begin
          human Fmt.stdout;
          if obs.metrics then
            Fmt.pr "metrics: %a@." Tiling_obs.Json.pp
              (Tiling_obs.Metrics.snapshot ())
        end;
        if o.Tiling_fuzz.Driver.mismatches <> [] then exit 1;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: exact CME classification vs the trace-driven \
          simulator on random kernels and geometries")
    Term.(
      ret
        (const run $ trials_arg $ time_budget_arg $ spec_arg $ seed_arg
       $ domains_arg $ oracle_mode_arg $ obs_term))

let oracle_cmd =
  let kernels_arg =
    let doc =
      "Kernels to check (default: the whole rotation, paper table plus \
       extras)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"KERNEL" ~doc)
  in
  let oracle_size_arg =
    let doc =
      "Problem size N for every kernel (small: the oracle visits every \
       iteration point)."
    in
    Arg.(value & opt int 12 & info [ "n"; "size" ] ~docv:"N" ~doc)
  in
  let run kernels size csize line assoc mode =
    match build_cache csize line assoc with
    | Error (`Msg m) -> `Error (false, m)
    | Ok cache ->
        let specs =
          match kernels with
          | [] -> Ok Tiling_kernels.Kernels.rotation
          | names -> (
              try
                Ok
                  (List.map
                     (fun n ->
                       match Tiling_kernels.Kernels.find n with
                       | s -> s
                       | exception Not_found -> raise (Failure n))
                     names)
              with Failure n ->
                Error (Printf.sprintf "unknown kernel %S (try `tiler list')" n))
        in
        (match specs with
        | Error m -> `Error (false, m)
        | Ok specs ->
            let failed = ref false in
            List.iter
              (fun (spec : Tiling_kernels.Kernels.spec) ->
                let nest = spec.build size in
                (* Untiled, then a canonical tiling: the tiled variant drives
                   the Tile_ctrl/Tile_elem solver paths (including the affine
                   ones) that the untiled nest never reaches. *)
                let variants =
                  let spans = Tiling_ir.Transform.tile_spans nest in
                  [
                    ("untiled", nest);
                    ( "tiled",
                      Tiling_ir.Transform.tile nest
                        (Array.map (fun s -> min 4 s) spans) );
                  ]
                in
                List.iter
                  (fun (label, nest) ->
                    let r = Tiling_fuzz.Oracle.check ~mode nest cache in
                    let verdict =
                      match r.Tiling_fuzz.Oracle.verdict with
                      | Tiling_fuzz.Oracle.Agree -> "agree"
                      | Tiling_fuzz.Oracle.Inconclusive _ ->
                          "inconclusive (fallback-masked)"
                      | Tiling_fuzz.Oracle.Mismatch _ ->
                          failed := true;
                          "MISMATCH"
                    in
                    Fmt.pr "%-9s n=%-4d %-8s %s (%d accesses, %d fallbacks)@."
                      spec.name size label verdict
                      r.Tiling_fuzz.Oracle.accesses
                      r.Tiling_fuzz.Oracle.fallbacks;
                    match r.Tiling_fuzz.Oracle.verdict with
                    | Tiling_fuzz.Oracle.Mismatch _ ->
                        Fmt.pr "%a@." Tiling_fuzz.Oracle.pp_result r
                    | _ -> ())
                  variants)
              specs;
            if !failed then begin
              Fmt.pr "oracle: CME solver disagrees with the simulator@.";
              exit 1
            end;
            Fmt.pr "oracle: solver and simulator agree on every kernel@.";
            `Ok ())
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:
         "Exhaustive CME-vs-simulator check over the kernel suite (exit 1 on \
          any fallback-free disagreement); the CI acceptance gate")
    Term.(
      ret
        (const run $ kernels_arg $ oracle_size_arg $ cache_size_arg $ line_arg
       $ assoc_arg $ oracle_mode_arg))

let baselines_cmd =
  let run name size csize line assoc seed obs =
    with_setup name size csize line assoc (fun _ n nest cache ->
        obs_run obs ~command:"baselines" ~kernel:name ~n ~cache (fun () ->
            let sample = Tiling_core.Sample.create ~seed nest in
            let eval tiles = Tiling_core.Tiler.objective_on sample nest cache tiles in
            let rows = ref [] in
            let note label tiles obj = rows := (label, tiles, obj) :: !rows in
            let opts = { Tiling_core.Tiler.default_opts with seed } in
            let ga = Tiling_core.Tiler.optimize ~opts nest cache in
            note "GA (paper)" ga.Tiling_core.Tiler.tiles
              ga.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective;
            let r = Tiling_baselines.Search.random ~evals:450 ~seed sample nest cache in
            note "random-450" r.Tiling_baselines.Search.tiles
              r.Tiling_baselines.Search.objective;
            let h = Tiling_baselines.Search.hill_climb ~evals:450 ~seed sample nest cache in
            note "hill-climb-450" h.Tiling_baselines.Search.tiles
              h.Tiling_baselines.Search.objective;
            let lrw = Tiling_baselines.Analytic.lrw nest cache in
            note "LRW (ESS)" lrw (eval lrw);
            let cm = Tiling_baselines.Analytic.coleman_mckinley nest cache in
            note "Coleman-McKinley" cm (eval cm);
            let sm = Tiling_baselines.Analytic.sarkar_megiddo nest cache in
            note "Sarkar-Megiddo" sm (eval sm);
            let co = Tiling_baselines.Oblivious.tile_vector nest cache in
            note "cache-oblivious" co (eval co);
            let untiled = Tiling_ir.Transform.tile_spans nest in
            note "untiled" untiled (eval untiled);
            let rows = List.rev !rows in
            let human ppf =
              Fmt.pf ppf
                "%s n=%d on %a (objective: replacement misses in the sample)@."
                name n Tiling_cache.Config.pp cache;
              List.iter
                (fun (label, tiles, obj) ->
                  Fmt.pf ppf "%-18s tiles=[%a] objective=%g@." label
                    Fmt.(array ~sep:(any ",") int)
                    tiles obj)
                rows
            in
            let json_rows =
              Tiling_obs.Json.List
                (List.map
                   (fun (label, tiles, obj) ->
                     Tiling_obs.Json.Obj
                       [
                         ("label", Tiling_obs.Json.String label);
                         ( "tiles",
                           Tiling_obs.Json.List
                             (Array.to_list
                                (Array.map
                                   (fun t -> Tiling_obs.Json.Int t)
                                   tiles)) );
                         ("objective", Tiling_obs.Json.Float obj);
                       ])
                   rows)
            in
            (human, [ ("result", json_rows) ])))
  in
  Cmd.v
    (Cmd.info "baselines" ~doc:"Compare tile-selection baselines on a kernel")
    Term.(
      ret
        (const run $ kernel_arg $ size_arg $ cache_size_arg $ line_arg
       $ assoc_arg $ seed_arg $ obs_term))

(* ------------------------------------------------------------------ *)
(* Daemon: serve and request (docs/SERVER.md)                           *)

let socket_arg =
  let doc =
    "Daemon address: $(b,unix:PATH), $(b,tcp:HOST:PORT) or $(b,HOST:PORT) \
     (defaults to the $(b,TILING_SOCKET) environment variable, else \
     $(b,unix:tiler.sock))."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"ADDR" ~doc)

let resolve_addr socket =
  let spec =
    match socket with
    | Some s -> Some s
    | None -> (
        match Sys.getenv_opt "TILING_SOCKET" with
        | Some s when String.trim s <> "" -> Some s
        | _ -> None)
  in
  match spec with
  | None -> Ok Tiling_server.Server.default_config.Tiling_server.Server.addr
  | Some s -> Tiling_util.Netio.addr_of_string s

let serve_cmd =
  let workers_arg =
    let doc = "Request-scheduler worker threads (each request still \
               parallelises internally over $(b,--domains))." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Admission-queue capacity; requests beyond it are rejected \
               with $(b,overloaded) and a retry hint." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let store_arg =
    let doc = "Persistent result-store log (defaults to the \
               $(b,TILING_STORE) environment variable; unset = no \
               persistence)." in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE" ~doc)
  in
  let deadline_arg =
    let doc = "Default per-request deadline in seconds, for requests that \
               carry no $(b,deadline_s) of their own." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC" ~doc)
  in
  let max_line_arg =
    let doc = "Request-line byte cap ($(b,payload_too_large) beyond)." in
    Arg.(value & opt int (1 lsl 20) & info [ "max-line" ] ~docv:"BYTES" ~doc)
  in
  let metrics_addr_arg =
    let doc =
      "Also serve $(b,GET /metrics) (OpenMetrics text, for Prometheus) on \
       this address: $(b,tcp:HOST:PORT) or $(b,unix:PATH)."
    in
    Arg.(
      value & opt (some string) None & info [ "metrics-addr" ] ~docv:"ADDR" ~doc)
  in
  let events_out_arg =
    let doc =
      "Append every telemetry event (GA generations, search restarts, ...) \
       to $(docv) as NDJSON (see docs/OBSERVABILITY.md)."
    in
    Arg.(
      value & opt (some string) None & info [ "events-out" ] ~docv:"FILE" ~doc)
  in
  let router_arg =
    let doc =
      "Run as a fleet router instead of a worker daemon: shard searching \
       requests across the $(b,--worker) daemons by fingerprint hash, \
       coalesce identical in-flight requests, fail crashed workers over \
       to the next live node (see docs/SERVER.md, Fleet mode).  Ignores \
       the evaluation flags ($(b,--workers), $(b,--queue), $(b,--store), \
       $(b,--deadline), $(b,--domains))."
    in
    Arg.(value & flag & info [ "router" ] ~doc)
  in
  let worker_addr_arg =
    let doc =
      "Worker daemon address for $(b,--router) mode (repeatable): \
       $(b,unix:PATH), $(b,tcp:HOST:PORT) or $(b,HOST:PORT)."
    in
    Arg.(value & opt_all string [] & info [ "worker" ] ~docv:"ADDR" ~doc)
  in
  let health_period_arg =
    let doc = "Seconds between worker health sweeps in $(b,--router) mode." in
    Arg.(value & opt float 2.0 & info [ "health-period" ] ~docv:"SEC" ~doc)
  in
  let run socket workers queue store deadline max_line metrics_addr events_out
      router worker_addrs health_period domains obs =
    match resolve_addr socket with
    | Error m -> `Error (false, m)
    | Ok addr -> (
        match
          match metrics_addr with
          | None -> Ok None
          | Some s -> Result.map Option.some (Tiling_util.Netio.addr_of_string s)
        with
        | Error m -> `Error (false, m)
        | Ok metrics_addr -> (
            (* A daemon with logging fully off is a black box; default to the
               App level so the serving/draining lifecycle lines show. *)
            Tiling_obs.Logging.setup
              (match obs.log_level with None -> Some Logs.App | l -> l);
            (* The daemon's telemetry surfaces (stats, metrics, --trace,
               progress streaming) are only as good as what is recorded, so
               serving always records — the registries cost a few atomics
               per event and nothing else. *)
            Tiling_obs.Metrics.set_enabled true;
            Tiling_obs.Events.set_enabled true;
            if obs.trace_out <> None then Tiling_obs.Span.set_enabled true;
            (match events_out with
            | None -> ()
            | Some file -> (
                match Tiling_obs.Events.open_sink file with
                | Ok () -> ()
                | Error m ->
                    Fmt.epr "tiler: cannot open events sink: %s@." m));
            let r =
              if router then begin
                let rec addrs_of = function
                  | [] -> Ok []
                  | s :: rest ->
                      Result.bind (Tiling_util.Netio.addr_of_string s)
                        (fun a -> Result.map (fun r -> a :: r) (addrs_of rest))
                in
                match addrs_of worker_addrs with
                | Error m -> Error m
                | Ok [] ->
                    Error "serve --router needs at least one --worker ADDR"
                | Ok worker_addrs ->
                    Tiling_fleet.Router.run
                      {
                        Tiling_fleet.Router.addr;
                        workers = worker_addrs;
                        health_period_s = health_period;
                        io_timeout_s = 2.0;
                        max_line_bytes = max_line;
                        metrics_addr;
                      }
              end
              else begin
                let store_path =
                  match store with
                  | Some _ -> store
                  | None -> (
                      match Sys.getenv_opt "TILING_STORE" with
                      | Some s when String.trim s <> "" -> Some s
                      | _ -> None)
                in
                Tiling_server.Server.run
                  {
                    Tiling_server.Server.addr;
                    workers;
                    capacity = queue;
                    store_path;
                    default_deadline_s = deadline;
                    domains;
                    max_line_bytes = max_line;
                    metrics_addr;
                  }
              end
            in
            Tiling_obs.Events.close_sink ();
            Option.iter
              (fun file ->
                try Tiling_obs.Span.write_chrome file
                with Sys_error m -> Fmt.epr "tiler: cannot write trace: %s@." m)
              obs.trace_out;
            if obs.metrics then
              Fmt.epr "metrics: %a@." Tiling_obs.Json.pp
                (Tiling_obs.Metrics.snapshot ());
            match r with Ok () -> `Ok () | Error m -> `Error (false, m)))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tiling daemon: newline-delimited JSON requests over a \
          Unix or TCP socket, with admission control and a persistent \
          result store — or, with $(b,--router), the fleet router in \
          front of a set of such daemons (see docs/SERVER.md)")
    Term.(
      ret
        (const run $ socket_arg $ workers_arg $ queue_arg $ store_arg
       $ deadline_arg $ max_line_arg $ metrics_addr_arg $ events_out_arg
       $ router_arg $ worker_addr_arg $ health_period_arg
       $ domains_arg $ obs_term))

(* --- `request --trace` flame summary ------------------------------- *)

(* The daemon's trace tree ({"trace_id","dropped","spans","total_us"},
   node = {"name","ts_us","dur_us","attrs"?,"children"?}) aggregated by
   span name at each level: counts, summed duration, share of the
   request's wall clock. *)
let print_flame ppf trace =
  let module J = Tiling_obs.Json in
  let num j = Option.value (Option.bind j J.to_float) ~default:0. in
  let str j = match j with Some (J.String s) -> s | _ -> "?" in
  let ilist j = match j with Some (J.List l) -> l | _ -> [] in
  let total_us = num (J.member "total_us" trace) in
  let spans = ilist (J.member "spans" trace) in
  let dropped =
    match J.member "dropped" trace with Some (J.Int d) -> d | _ -> 0
  in
  let children node = ilist (J.member "children" node) in
  (* Group sibling spans by name, keeping first-seen order. *)
  let group nodes =
    let order = ref [] and tbl = Hashtbl.create 8 in
    List.iter
      (fun node ->
        let name = str (J.member "name" node) in
        let entry =
          match Hashtbl.find_opt tbl name with
          | Some e -> e
          | None ->
              let e = ref (0, 0., []) in
              Hashtbl.add tbl name e;
              order := name :: !order;
              e
        in
        let count, dur, kids = !entry in
        entry :=
          ( count + 1,
            dur +. num (J.member "dur_us" node),
            List.rev_append (children node) kids ))
      nodes;
    List.rev_map (fun name -> (name, !(Hashtbl.find tbl name))) !order
  in
  let rec walk depth groups =
    List.iter
      (fun (name, (count, dur_us, kids)) ->
        let pct = if total_us > 0. then 100. *. dur_us /. total_us else 0. in
        Fmt.pf ppf "  %s%-*s %5dx %10.2f ms %5.1f%%@."
          (String.make (2 * depth) ' ')
          (max 1 (30 - 2 * depth))
          name count (dur_us /. 1000.) pct;
        walk (depth + 1) (group (List.rev kids)))
      groups
  in
  Fmt.pf ppf "trace %.0f: %.2f ms wall clock%s@."
    (num (J.member "trace_id" trace))
    (total_us /. 1000.)
    (if dropped > 0 then Printf.sprintf " (%d spans dropped)" dropped else "");
  walk 0 (group spans);
  (* Memo effectiveness, from the request.eval.stats instants. *)
  let hits = ref 0 and fresh = ref 0 in
  let rec scan node =
    (if str (J.member "name" node) = "request.eval.stats" then
       match J.member "attrs" node with
       | Some attrs ->
           hits := !hits + int_of_float (num (J.member "memo_hits" attrs));
           fresh := !fresh + int_of_float (num (J.member "fresh" attrs))
       | None -> ());
    List.iter scan (children node)
  in
  List.iter scan spans;
  if !hits + !fresh > 0 then
    Fmt.pf ppf "  memo: %d hits, %d fresh (%.1f%% hit rate)@." !hits !fresh
      (100. *. float_of_int !hits /. float_of_int (!hits + !fresh))

let print_progress_event ev =
  let module J = Tiling_obs.Json in
  let kind =
    match J.member "kind" ev with Some (J.String s) -> s | _ -> "?"
  in
  let attrs =
    match J.member "attrs" ev with
    | Some a -> " " ^ J.to_string a
    | None -> ""
  in
  Fmt.epr "progress: %s%s@." kind attrs

let request_cmd =
  let meth_arg =
    let doc =
      "Request method: analyze, tile, pad-tile, fuzz-case, stats or \
       shutdown."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"METHOD" ~doc)
  in
  let opt_int names docv doc =
    Arg.(value & opt (some int) None & info names ~docv ~doc)
  in
  let kernel_opt_arg =
    let doc = "Kernel name (see $(b,tiler list))." in
    Arg.(value & opt (some string) None & info [ "kernel" ] ~docv:"KERNEL" ~doc)
  in
  let backend_opt_arg =
    let doc = "Candidate cost backend name (validated by the daemon)." in
    Arg.(value & opt (some string) None & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let case_arg =
    let doc = "Fuzz case repro line (for $(b,fuzz-case))." in
    Arg.(value & opt (some string) None & info [ "case" ] ~docv:"LINE" ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline in seconds." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC" ~doc)
  in
  let trace_arg =
    let doc =
      "Ask the daemon for the request's span tree (returned under \
       $(b,result.trace)) and print a flame summary — queue wait, \
       evaluation time, memo hit rate — to stderr."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let progress_arg =
    let doc =
      "Stream the search's per-generation progress events to stderr while \
       the request runs."
    in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let retries_arg =
    let doc =
      "Retry up to $(docv) times when the daemon answers $(b,overloaded), \
       sleeping the server's $(b,retry_after_s) hint (with jitter) between \
       attempts; transport failures reconnect and retry the same way.  \
       Default 0: fail on the first reject."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let run socket meth kernel n csize line assoc seed backend tiles exact case
      deadline trace progress retries =
    match resolve_addr socket with
    | Error m -> `Error (false, m)
    | Ok addr -> (
        let params =
          List.filter_map Fun.id
            [
              Option.map (fun k -> ("kernel", Tiling_obs.Json.String k)) kernel;
              Option.map (fun v -> ("n", Tiling_obs.Json.Int v)) n;
              Option.map (fun v -> ("cache_size", Tiling_obs.Json.Int v)) csize;
              Option.map (fun v -> ("line", Tiling_obs.Json.Int v)) line;
              Option.map (fun v -> ("assoc", Tiling_obs.Json.Int v)) assoc;
              Option.map (fun v -> ("seed", Tiling_obs.Json.Int v)) seed;
              Option.map (fun b -> ("backend", Tiling_obs.Json.String b)) backend;
              Option.map
                (fun ts ->
                  ( "tiles",
                    Tiling_obs.Json.List
                      (List.map (fun t -> Tiling_obs.Json.Int t) ts) ))
                tiles;
              (if exact then Some ("exact", Tiling_obs.Json.Bool true) else None);
              Option.map (fun c -> ("case", Tiling_obs.Json.String c)) case;
              Option.map (fun d -> ("deadline_s", Tiling_obs.Json.Float d)) deadline;
              (if trace then Some ("trace", Tiling_obs.Json.Bool true) else None);
              (if progress then Some ("progress", Tiling_obs.Json.Bool true)
               else None);
            ]
        in
        let on_progress =
          if progress then Some print_progress_event else None
        in
        let backoff = Tiling_fleet.Backoff.create () in
        let connect () =
          match Tiling_server.Client.connect addr with
          | Error m ->
              Fmt.epr "tiler: cannot connect to %s: %s@."
                (Tiling_util.Netio.addr_to_string addr)
                m;
              exit 1
          | Ok client -> client
        in
        let sleep_before_retry ?hint ~why used =
          let delay = Tiling_fleet.Backoff.next ?hint backoff in
          Fmt.epr "tiler: %s; retrying in %.1fs (%d/%d)@." why delay used
            retries;
          Unix.sleepf delay
        in
        let finish envelope =
          print_endline (Tiling_obs.Json.to_string envelope);
          match Tiling_server.Client.result_of_response envelope with
          | Ok result ->
              if trace then
                Option.iter
                  (fun t -> print_flame Fmt.stderr t)
                  (Tiling_obs.Json.member "trace" result);
              `Ok ()
          | Error _ -> exit 1
        in
        let rec attempt client left =
          let resp =
            Tiling_server.Client.call ?on_progress client ~meth ~params
          in
          match resp with
          | Error m when left > 0 ->
              (* Transport trouble (daemon restarting, connection torn):
                 reconnect on a fresh socket for the next try. *)
              Tiling_server.Client.close client;
              sleep_before_retry ~why:m (retries - left + 1);
              attempt (connect ()) (left - 1)
          | Error m ->
              Tiling_server.Client.close client;
              Fmt.epr "tiler: %s@." m;
              exit 1
          | Ok envelope -> (
              match Tiling_server.Client.result_of_response envelope with
              | Error { Tiling_server.Protocol.code = Tiling_server.Protocol.Overloaded;
                        retry_after_s; _ }
                when left > 0 ->
                  sleep_before_retry ?hint:retry_after_s ~why:"overloaded"
                    (retries - left + 1);
                  attempt client (left - 1)
              | _ ->
                  Tiling_server.Client.close client;
                  finish envelope)
        in
        attempt (connect ()) (max 0 retries))
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running tiling daemon and print the JSON \
          response (exit 0 on $(b,status=ok), 1 on a server-side error)")
    Term.(
      ret
        (const run $ socket_arg $ meth_arg $ kernel_opt_arg
       $ opt_int [ "n"; "size" ] "N" "Problem size N."
       $ opt_int [ "cache" ] "BYTES" "Cache size in bytes."
       $ opt_int [ "line" ] "BYTES" "Line size in bytes."
       $ opt_int [ "assoc" ] "WAYS" "Associativity."
       $ opt_int [ "seed" ] "SEED" "Random seed."
       $ backend_opt_arg $ tiles_arg
       $ Arg.(value & flag & info [ "exact" ] ~doc:"Exact CME enumeration.")
       $ case_arg $ deadline_arg $ trace_arg $ progress_arg $ retries_arg))

(* One call against a running daemon, with the connection/error plumbing
   shared by `tiler metrics` and `tiler top`. *)
let daemon_call addr ~meth ~params =
  match Tiling_server.Client.connect addr with
  | Error m ->
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (Tiling_util.Netio.addr_to_string addr)
           m)
  | Ok client -> (
      let resp = Tiling_server.Client.call client ~meth ~params in
      Tiling_server.Client.close client;
      match resp with
      | Error m -> Error m
      | Ok envelope -> (
          match Tiling_server.Client.result_of_response envelope with
          | Ok result -> Ok result
          | Error e -> Error e.Tiling_server.Protocol.message))

let metrics_cmd =
  let json_arg =
    let doc =
      "Print the raw registry snapshot as JSON instead of OpenMetrics text."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run socket json =
    match resolve_addr socket with
    | Error m -> `Error (false, m)
    | Ok addr -> (
        let fmt = if json then "json" else "openmetrics" in
        match
          daemon_call addr ~meth:"metrics"
            ~params:[ ("format", Tiling_obs.Json.String fmt) ]
        with
        | Error m ->
            Fmt.epr "tiler: %s@." m;
            exit 1
        | Ok result ->
            (if json then
               match Tiling_obs.Json.member "snapshot" result with
               | Some snap -> print_endline (Tiling_obs.Json.to_string snap)
               | None -> print_endline (Tiling_obs.Json.to_string result)
             else
               match Tiling_obs.Json.member "body" result with
               | Some (Tiling_obs.Json.String body) -> print_string body
               | _ -> print_endline (Tiling_obs.Json.to_string result));
            `Ok ())
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Scrape a running daemon's metrics once — OpenMetrics text by \
          default, the JSON registry snapshot with $(b,--json)")
    Term.(ret (const run $ socket_arg $ json_arg))

(* --- `tiler top`: a live text view of the daemon ------------------- *)

let render_top ppf stats metrics =
  let module J = Tiling_obs.Json in
  let num path j =
    let rec go path j =
      match path with
      | [] -> J.to_float j
      | k :: rest -> Option.bind (J.member k j) (go rest)
    in
    Option.value (go path j) ~default:0.
  in
  let int_ path j = int_of_float (num path j) in
  let uptime = num [ "uptime_s" ] stats in
  Fmt.pf ppf "tiler top — pid %d, up %.0fs, %d connections@."
    (int_ [ "pid" ] stats) uptime
    (int_ [ "connections" ] stats);
  Fmt.pf ppf "queue     %d/%d slots, %d workers@."
    (int_ [ "queue"; "depth" ] stats)
    (int_ [ "queue"; "capacity" ] stats)
    (int_ [ "queue"; "workers" ] stats);
  Fmt.pf ppf "requests  %d completed, %d rejected, %d timeouts@."
    (int_ [ "requests"; "completed" ] stats)
    (int_ [ "requests"; "rejected" ] stats)
    (int_ [ "requests"; "timeouts" ] stats);
  Fmt.pf ppf "latency   p50 %.1f ms, p95 %.1f ms (%d samples)@."
    (num [ "latency_ms"; "p50" ] stats)
    (num [ "latency_ms"; "p95" ] stats)
    (int_ [ "latency_ms"; "samples" ] stats);
  (match J.member "store" stats with
  | Some (J.Obj _ as store) ->
      let hits = num [ "hits" ] store and misses = num [ "misses" ] store in
      let rate =
        if hits +. misses > 0. then 100. *. hits /. (hits +. misses) else 0.
      in
      Fmt.pf ppf "store     %d entries, %.0f hits / %.0f misses (%.1f%%)@."
        (int_ [ "entries" ] store) hits misses rate
  | _ -> Fmt.pf ppf "store     (none)@.");
  (match metrics with
  | None -> ()
  | Some m ->
      let workers = num [ "gauges"; "pool.workers" ] m in
      let tasks = num [ "counters"; "pool.tasks" ] m in
      let chunks = num [ "counters"; "pool.chunks" ] m in
      if workers > 0. || tasks > 0. then
        Fmt.pf ppf "pool      %.0f domains, %.0f jobs, %.0f chunks@." workers
          tasks chunks);
  (match J.member "inflight" stats with
  | Some (J.List (_ :: _ as jobs)) ->
      Fmt.pf ppf "in flight:@.";
      List.iter
        (fun job ->
          Fmt.pf ppf "  %-10s queued %6.2fs  running %6.2fs@."
            (match J.member "method" job with
            | Some (J.String s) -> s
            | _ -> "?")
            (num [ "queued_s" ] job)
            (num [ "running_s" ] job))
        jobs
  | _ -> Fmt.pf ppf "in flight: (idle)@.");
  match J.member "events" stats with
  | Some (J.List (_ :: _ as evs)) ->
      Fmt.pf ppf "recent events:@.";
      List.iter
        (fun ev ->
          Fmt.pf ppf "  [%d] %s%s@."
            (int_ [ "seq" ] ev)
            (match J.member "kind" ev with
            | Some (J.String s) -> s
            | _ -> "?")
            (match J.member "attrs" ev with
            | Some a -> " " ^ J.to_string a
            | None -> ""))
        evs
  | _ -> ()

let top_cmd =
  let interval_arg =
    let doc = "Seconds between refreshes." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SEC" ~doc)
  in
  let iterations_arg =
    let doc = "Refresh this many times then exit (0 = run until ^C)." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N" ~doc)
  in
  let events_arg =
    let doc = "Recent telemetry events to show per refresh." in
    Arg.(value & opt int 8 & info [ "events" ] ~docv:"N" ~doc)
  in
  let run socket interval iterations events =
    match resolve_addr socket with
    | Error m -> `Error (false, m)
    | Ok addr ->
        let interval = Float.max 0.1 interval in
        let live = iterations <> 1 in
        let rec loop i =
          let stats =
            daemon_call addr ~meth:"stats"
              ~params:[ ("events", Tiling_obs.Json.Int events) ]
          in
          (match stats with
          | Error m ->
              Fmt.epr "tiler: %s@." m;
              exit 1
          | Ok stats ->
              let metrics =
                match
                  daemon_call addr ~meth:"metrics"
                    ~params:[ ("format", Tiling_obs.Json.String "json") ]
                with
                | Ok r -> Tiling_obs.Json.member "snapshot" r
                | Error _ -> None
              in
              (* Clear the screen between refreshes only when looping. *)
              if live then Fmt.pr "\027[2J\027[H";
              render_top Fmt.stdout stats metrics;
              Fmt.pr "%!");
          if iterations = 0 || i < iterations then begin
            Unix.sleepf interval;
            loop (i + 1)
          end
        in
        loop 1;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of a running daemon: queue depth, in-flight \
          requests, latency, pool and store effectiveness, recent search \
          events")
    Term.(ret (const run $ socket_arg $ interval_arg $ iterations_arg $ events_arg))

let () =
  let doc = "near-optimal loop tiling by cache miss equations and a GA" in
  let info = Cmd.info "tiler" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        list_cmd; show_cmd; simulate_cmd; analyze_cmd; equations_cmd;
        tile_cmd; pad_cmd; pad_tile_cmd; joint_cmd; order_cmd;
        codegen_cmd; trace_cmd; baselines_cmd; fuzz_cmd; oracle_cmd;
        serve_cmd; request_cmd; metrics_cmd; top_cmd;
      ]
  in
  (* Exit-code contract (docs/SERVER.md): 0 success, 1 runtime failure
     (fuzz mismatches, server-side request errors), 2 argument or
     validation errors, 125 unexpected exceptions. *)
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok ()) | Ok `Version | Ok `Help -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 125)
